// Fixture: package-level state in a simulator package — mutable vars
// are flagged; blank asserts and justified immutable tables are not.
package router

type Table struct{ Size int }

type arbiter interface{ Arbitrate() int }

var hits int // want `package-level var hits in a simulator package leaks state across runs`

var Lookup = map[string]int{"east": 0} // want `package-level var Lookup in a simulator package leaks state across runs`

var a, b int // want `package-level var a, b in a simulator package leaks state across runs`

//hetpnoc:immutable frozen provisioning table, written only by this initializer
var Frozen = Table{Size: 4}

//hetpnoc:immutable
var unjustified = Table{Size: 5} // want `needs a justification`

//hetpnoc:immutable the three bandwidth sets of the evaluation, never reassigned
var (
	SetA = Table{Size: 1}
	SetB = Table{Size: 2}
)

var _ arbiter = (*nullArbiter)(nil) // interface-compliance assert: allowed

type nullArbiter struct{}

func (*nullArbiter) Arbitrate() int { return 0 }

func use() int { return hits + Frozen.Size + unjustified.Size + SetA.Size + SetB.Size + a + b }

var _ = use
