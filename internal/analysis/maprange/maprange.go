// Package maprange flags range statements over maps in the simulator
// core. Go randomizes map iteration order per run, so an undirected map
// range is the classic silent determinism killer: statistics, event
// order or resource assignment quietly differ between two identically
// seeded runs.
//
// A map range is allowed when:
//   - it is the canonical sorted-iteration prologue — a key-collection
//     loop `for k := range m { keys = append(keys, k) }` whose target
//     slice is passed to a sort or slices call later in the same
//     function; or
//   - the statement carries a //hetpnoc:orderfree directive (same line
//     or the line above) with a justification explaining why its body
//     is insensitive to order — e.g. it only fills another map, or
//     folds with a commutative operation.
//
// Everything else must iterate sorted keys.
package maprange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hetpnoc/internal/analysis"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range over a map in simulator packages\n\n" +
		"Map iteration order is randomized per run; sort the keys first or\n" +
		"annotate the statement //hetpnoc:orderfree <why> when the body is\n" +
		"provably order-insensitive.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		dirs := analysis.ParseDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			body := funcBody(n)
			if body == nil {
				return true
			}
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				check(pass, dirs, body, rs)
				return true
			})
			return false // inner walk covered this function (incl. nested literals)
		})
	}
	return nil
}

func funcBody(n ast.Node) *ast.BlockStmt {
	fd, ok := n.(*ast.FuncDecl)
	if !ok || fd.Body == nil {
		return nil
	}
	return fd.Body
}

func check(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if dir, ok := dirs.Covering(rs, analysis.DirectiveOrderfree); ok {
		if dir.Arg == "" {
			pass.Reportf(rs.Pos(),
				"//hetpnoc:orderfree needs a justification explaining why this range is order-insensitive",
				"//hetpnoc:orderfree <why the body is insensitive to iteration order>")
		}
		return
	}
	if IsSortedCollect(pass, fn, rs) {
		return
	}
	pass.Reportf(rs.Pos(),
		fmt.Sprintf("range over map %s has randomized iteration order, which breaks run reproducibility; iterate sorted keys instead",
			types.TypeString(t, types.RelativeTo(pass.Pkg))),
		"//hetpnoc:orderfree <why> on the line above, if the body is order-insensitive")
}

// IsSortedCollect recognizes the sorted-iteration prologue: the loop
// body is exactly `keys = append(keys, k)` for the range key, and the
// same function later hands keys to package sort or slices. The sort
// erases the nondeterministic collection order. dettaint reuses it so
// the idiom stays taint-free in helper packages too.
func IsSortedCollect(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	target := types.ExprString(as.Lhs[0])
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || arg.Name != key.Name || types.ExprString(call.Args[0]) != target {
		return false
	}

	// Look for sort.X(target, ...) or slices.X(target, ...) after the
	// loop in the same function.
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rs.End() || len(c.Args) == 0 {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn := pass.PkgNameOf(id)
		if pn == nil {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		if types.ExprString(c.Args[0]) == target {
			sorted = true
		}
		return true
	})
	return sorted
}
