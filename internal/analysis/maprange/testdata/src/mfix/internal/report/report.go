// Fixture: internal/report is not a simulator package, so its map
// ranges are unconstrained.
package report

func Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
