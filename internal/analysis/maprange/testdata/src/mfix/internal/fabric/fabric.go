// Fixture: map iteration in a simulator package — undirected ranges are
// flagged, the sorted-keys prologue and justified orderfree directives
// are not.
package fabric

import "sort"

func Undirected(m map[string]int) int {
	s := 0
	for _, v := range m { // want `range over map map\[string\]int has randomized iteration order`
		s += v
	}
	return s
}

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collection loop, erased by the sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func CollectedButNeverSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map map\[string\]int has randomized iteration order`
		keys = append(keys, k)
	}
	return keys
}

func Directed(m map[string]int) int {
	s := 0
	//hetpnoc:orderfree integer addition is commutative
	for _, v := range m {
		s += v
	}
	return s
}

func TrailingDirective(dst, src map[string]int) {
	for k, v := range src { //hetpnoc:orderfree fills a map, insertion order is invisible
		dst[k] = v
	}
}

func MissingJustification(m map[string]int) {
	//hetpnoc:orderfree
	for range m { // want `needs a justification`
	}
}

func SliceRange(xs []int) int {
	s := 0
	for _, v := range xs { // slices iterate in index order: fine
		s += v
	}
	return s
}
