package maprange_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maprange.Analyzer,
		"mfix/internal/fabric",
		"mfix/internal/report",
	)
}
