// Package vflow computes intraprocedural def-use chains — the
// value-flow layer of the hetpnoclint suite. For every use of a local
// variable it answers "which assignments can this value come from?",
// by running a reaching-definitions analysis (a may-dataflow: a
// definition reaches a use when it survives along at least one path)
// over the internal/analysis/cfg control-flow graph.
//
// The provenance consumers (unitsafe's laundering-cast detection,
// seedflow's fabric-variable canonicalization) only ever act on defs
// they can fully explain, so the layer is deliberately conservative:
// a definition whose right-hand side cannot be paired one-to-one with
// its variable — tuple assignments, compound ops (+=), zero-value
// declarations, range variables — is recorded as opaque (RHS nil), and
// variables the function cannot reason about locally at all (address
// taken, assigned inside a function literal that may run at any time)
// have every definition forced opaque. Function parameters carry no
// definitions; their uses resolve to nothing, which consumers treat as
// unknown provenance.
//
// Like the call graph, per-function results are memoized module-wide
// through ModulePass.Cache so the analyzers of one lint invocation
// share a single build.
package vflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/cfg"
)

// Def is one definition of a local variable.
type Def struct {
	// Var is the defined variable.
	Var *types.Var

	// Node is the defining statement (AssignStmt, DeclStmt, IncDecStmt)
	// or, for range variables, the ranged operand — for diagnostics.
	Node ast.Node

	// RHS is the defining expression when the definition pairs the
	// variable with exactly one right-hand side (x := e, x = e, paired
	// var declarations). It is nil for opaque definitions: tuple
	// assignments, compound assignment ops, zero-value declarations,
	// x++/x--, range variables, and every definition of a variable that
	// is address-taken or assigned inside a function literal.
	RHS ast.Expr
}

// FuncInfo is the def-use information of one function body.
type FuncInfo struct {
	// Graph is the body's control-flow graph.
	Graph *cfg.Graph

	// UseDefs maps each reading identifier of a local variable to the
	// definitions reaching it, in deterministic (source) order. Idents
	// inside nested function literals are not recorded — a literal runs
	// at an unknown time, so no outer definition reliably reaches it.
	UseDefs map[*ast.Ident][]*Def
}

// DefsOf returns the definitions reaching the use id, or nil when id is
// not a recorded use (not a local variable read, inside a function
// literal, or in unreachable code).
func (fi *FuncInfo) DefsOf(id *ast.Ident) []*Def { return fi.UseDefs[id] }

// Module lazily builds and caches FuncInfo per function body.
type Module struct {
	fns map[*ast.BlockStmt]*FuncInfo
}

// FromPass returns the module's value-flow cache, memoized in mp.Cache
// (when the driver provides one) so unitsafe and seedflow share one
// build per function.
func FromPass(mp *analysis.ModulePass) *Module {
	const key = "vflow"
	if m, ok := mp.Cache[key].(*Module); ok {
		return m
	}
	m := &Module{fns: make(map[*ast.BlockStmt]*FuncInfo)}
	if mp.Cache != nil {
		mp.Cache[key] = m
	}
	return m
}

// FuncInfo returns the def-use information of body, building it on
// first request.
func (m *Module) FuncInfo(body *ast.BlockStmt, info *types.Info) *FuncInfo {
	if fi, ok := m.fns[body]; ok {
		return fi
	}
	fi := Analyze(body, info)
	m.fns[body] = fi
	return fi
}

// Analyze computes the def-use chains of one function body.
func Analyze(body *ast.BlockStmt, info *types.Info) *FuncInfo {
	b := &builder{
		info:   info,
		opaque: make(map[*types.Var]bool),
		extra:  make(map[ast.Node][]*Def),
	}
	b.scanOpaque(body)
	b.scanRangeDefs(body)

	g := cfg.New(body)
	nodeDefs := make(map[ast.Node][]int)
	varDefs := make(map[*types.Var][]int)
	var defs []*Def
	addDef := func(n ast.Node, d *Def) {
		idx := len(defs)
		defs = append(defs, d)
		nodeDefs[n] = append(nodeDefs[n], idx)
		varDefs[d.Var] = append(varDefs[d.Var], idx)
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range b.defsIn(n) {
				addDef(n, d)
			}
			for _, d := range b.extra[n] {
				addDef(n, d)
			}
		}
	}

	// Reaching definitions over the cfg may-engine: fact "d<i>" means
	// definition i survives on some path. A node's definitions kill
	// every other definition of the same variable, then gen themselves.
	transfer := func(n ast.Node, facts cfg.FactSet) {
		for _, idx := range nodeDefs[n] {
			for _, other := range varDefs[defs[idx].Var] {
				facts.Remove(factOf(other))
			}
		}
		for _, idx := range nodeDefs[n] {
			facts.Add(factOf(idx))
		}
	}
	in := g.ForwardMay(cfg.NewFactSet(), transfer)

	// Replay each reachable block, recording the reaching defs at every
	// variable read before applying the node's own definitions.
	fi := &FuncInfo{Graph: g, UseDefs: make(map[*ast.Ident][]*Def)}
	for _, blk := range g.Blocks {
		entry, reachable := in[blk]
		if !reachable {
			continue
		}
		facts := entry.Clone()
		for _, n := range blk.Nodes {
			for _, id := range b.usesIn(n) {
				v, ok := info.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				var reaching []*Def
				for _, idx := range varDefs[v] {
					if facts.Has(factOf(idx)) {
						reaching = append(reaching, defs[idx])
					}
				}
				fi.UseDefs[id] = reaching
			}
			transfer(n, facts)
		}
	}
	return fi
}

func factOf(idx int) string { return fmt.Sprintf("d%d", idx) }

type builder struct {
	info   *types.Info
	opaque map[*types.Var]bool

	// extra holds definitions anchored on nodes the cfg builder records
	// in place of their statement: the ranged operand stands in for the
	// range statement's key/value definitions.
	extra map[ast.Node][]*Def
}

// scanOpaque marks variables the intraprocedural analysis must not
// explain: address-taken (any alias may rewrite them) and assigned
// inside function literals (the write happens at an unknown time).
func (b *builder) scanOpaque(body *ast.BlockStmt) {
	var depth int
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					b.markOpaque(id)
				}
			}
		case *ast.AssignStmt:
			if depth > 0 {
				for _, lhs := range n.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						b.markOpaque(id)
					}
				}
			}
		case *ast.IncDecStmt:
			if depth > 0 {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					b.markOpaque(id)
				}
			}
		case *ast.RangeStmt:
			if depth > 0 {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						b.markOpaque(id)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (b *builder) markOpaque(id *ast.Ident) {
	if v := b.varOf(id); v != nil {
		b.opaque[v] = true
	}
}

// varOf resolves id to the local variable it names, defining or using.
func (b *builder) varOf(id *ast.Ident) *types.Var {
	if v, ok := b.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := b.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// scanRangeDefs anchors range key/value definitions on the ranged
// operand, the node the cfg builder records for the range head. Range
// variables are loop-carried — a fresh value every iteration — so they
// are always opaque.
func (b *builder) scanRangeDefs(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if v := b.varOf(id); v != nil {
				b.extra[rs.X] = append(b.extra[rs.X], &Def{Var: v, Node: rs.X})
			}
		}
		return true
	})
}

// defsIn returns the definitions a single cfg node performs, in source
// order. Definitions of opaque variables and unpaired right-hand sides
// come back with RHS nil.
func (b *builder) defsIn(n ast.Node) []*Def {
	var out []*Def
	add := func(id *ast.Ident, rhs ast.Expr) {
		v := b.varOf(id)
		if v == nil {
			return
		}
		if b.opaque[v] {
			rhs = nil
		}
		out = append(out, &Def{Var: v, Node: n, RHS: rhs})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		paired := (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) && len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue // writes through selectors/indexes define no variable
			}
			if paired {
				add(id, n.Rhs[i])
			} else {
				add(id, nil)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			paired := len(vs.Names) == len(vs.Values)
			for i, id := range vs.Names {
				if paired {
					add(id, vs.Values[i])
				} else {
					add(id, nil)
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := unparen(n.X).(*ast.Ident); ok {
			add(id, nil)
		}
	}
	return out
}

// usesIn returns the reading identifiers of one cfg node in source
// order: every variable ident except pure-write left-hand sides
// (x = e, x := e) and idents inside nested function literals. The
// left-hand side of a compound assignment (x += e) reads x and is
// included.
func (b *builder) usesIn(n ast.Node) []*ast.Ident {
	written := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
		for _, lhs := range as.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				written[id] = true
			}
		}
	}
	var out []*ast.Ident
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if !written[nd] {
				out = append(out, nd)
			}
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// PkgLastSegment returns the final path segment of a package path with
// any loader "_test" suffix stripped — the vocabulary unitsafe and
// seedflow use to recognize the units, sim and fabric packages by
// position rather than by hard-coded module path (fixture packages
// reuse the same suffixes).
func PkgLastSegment(path string) string {
	path = strings.TrimSuffix(path, "_test")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}
