package vflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// analyzeF type-checks src (import-free, one function F) and returns
// its FuncInfo plus the tooling to locate identifiers.
func analyzeF(t *testing.T, src string) (*FuncInfo, *token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatal("no function F")
	}
	return Analyze(body, info), fset, f, info
}

// useAt finds the use identifier named name on the given 1-based source
// line.
func useAt(t *testing.T, fset *token.FileSet, f *ast.File, info *types.Info, name string, line int) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if _, isUse := info.Uses[id]; !isUse {
			return true
		}
		if fset.Position(id.Pos()).Line == line {
			found = id
		}
		return true
	})
	if found == nil {
		t.Fatalf("no use of %q on line %d", name, line)
	}
	return found
}

// rhsStrings renders the defs' right-hand sides; opaque defs render as
// "?".
func rhsStrings(defs []*Def) []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		if d.RHS == nil {
			out[i] = "?"
			continue
		}
		out[i] = types.ExprString(d.RHS)
	}
	return out
}

func TestStraightLineSingleDef(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F() int {
	x := 40
	y := x + 2
	return y
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 4))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "40" {
		t.Fatalf("defs of x = %v, want [40]", got)
	}
	defs = fi.DefsOf(useAt(t, fset, f, info, "y", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "x + 2" {
		t.Fatalf("defs of y = %v, want [x + 2]", got)
	}
}

func TestRedefinitionKillsEarlierDef(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F() int {
	x := 1
	x = 2
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "2" {
		t.Fatalf("defs of x = %v, want [2]", got)
	}
}

func TestBranchJoinsBothDefs(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 7))
	if got := rhsStrings(defs); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("defs of x = %v, want [1 2]", got)
	}
}

func TestLoopBackEdgeReachesTop(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = x + i
	}
	return x
}`)
	// The read of x inside the loop body sees both the initial def and
	// its own previous iteration via the back edge.
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 5))
	if got := rhsStrings(defs); len(got) != 2 || got[0] != "0" || got[1] != "x + i" {
		t.Fatalf("defs of x in loop = %v, want [0, x + i]", got)
	}
	defs = fi.DefsOf(useAt(t, fset, f, info, "x", 7))
	if got := rhsStrings(defs); len(got) != 2 {
		t.Fatalf("defs of x at return = %v, want two defs", got)
	}
}

func TestCompoundAssignIsOpaqueButReads(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F() int {
	x := 1
	x += 2
	return x
}`)
	// x += 2 reads x (the initial def reaches it)...
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 4))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "1" {
		t.Fatalf("defs of x at += = %v, want [1]", got)
	}
	// ...and the def it produces is opaque.
	defs = fi.DefsOf(useAt(t, fset, f, info, "x", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "?" {
		t.Fatalf("defs of x at return = %v, want [?]", got)
	}
}

func TestTupleAssignIsOpaque(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func g() (int, int) { return 1, 2 }
func F() int {
	a, b := g()
	return a + b
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "a", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "?" {
		t.Fatalf("defs of a = %v, want [?]", got)
	}
}

func TestZeroValueDeclIsOpaque(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(c bool) float64 {
	var x float64
	if c {
		x = 2.5
	}
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 7))
	if got := rhsStrings(defs); len(got) != 2 || got[0] != "?" || got[1] != "2.5" {
		t.Fatalf("defs of x = %v, want [? 2.5]", got)
	}
}

func TestParamHasNoDefs(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(p int) int {
	return p
}`)
	if defs := fi.DefsOf(useAt(t, fset, f, info, "p", 3)); defs != nil {
		t.Fatalf("defs of param = %v, want none", rhsStrings(defs))
	}
}

func TestAddressTakenForcesOpaque(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func mut(p *int) { *p = 9 }
func F() int {
	x := 1
	mut(&x)
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 6))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "?" {
		t.Fatalf("defs of address-taken x = %v, want [?]", got)
	}
}

func TestClosureAssignmentForcesOpaque(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F() int {
	x := 1
	f := func() { x = 2 }
	f()
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 6))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "?" {
		t.Fatalf("defs of closure-assigned x = %v, want [?]", got)
	}
}

func TestClosureBodyUsesNotRecorded(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F() func() int {
	x := 1
	return func() int { return x }
}`)
	if defs := fi.DefsOf(useAt(t, fset, f, info, "x", 4)); defs != nil {
		t.Fatalf("defs of x inside closure = %v, want none", rhsStrings(defs))
	}
}

func TestRangeVariableIsOpaque(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(xs []int) int {
	s := 0
	for _, v := range xs {
		s = s + v
	}
	return s
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "v", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "?" {
		t.Fatalf("defs of range var = %v, want [?]", got)
	}
}

func TestShadowedVariablesStayDistinct(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(c bool) int {
	x := 1
	if c {
		x := 2
		_ = x
	}
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 6))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "2" {
		t.Fatalf("defs of inner x = %v, want [2]", got)
	}
	defs = fi.DefsOf(useAt(t, fset, f, info, "x", 8))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "1" {
		t.Fatalf("defs of outer x = %v, want [1]", got)
	}
}

func TestEarlyReturnLimitsDefs(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(c bool) int {
	x := 1
	if c {
		x = 2
		return x
	}
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 6))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "2" {
		t.Fatalf("defs of x at early return = %v, want [2]", got)
	}
	defs = fi.DefsOf(useAt(t, fset, f, info, "x", 8))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "1" {
		t.Fatalf("defs of x at tail return = %v, want [1]", got)
	}
}

func TestSwitchDefsJoin(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(n int) int {
	x := 0
	switch n {
	case 1:
		x = 10
	case 2:
		x = 20
	}
	return x
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "x", 10))
	if got := rhsStrings(defs); len(got) != 3 {
		t.Fatalf("defs of x after switch = %v, want three", got)
	}
}

func TestModuleMemoizes(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F() int {
	x := 1
	return x
}`)
	_ = fi
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
			body = fd.Body
		}
	}
	m := &Module{fns: make(map[*ast.BlockStmt]*FuncInfo)}
	a := m.FuncInfo(body, info)
	b := m.FuncInfo(body, info)
	if a != b {
		t.Fatal("Module.FuncInfo rebuilt instead of memoizing")
	}
	_ = fset
}

func TestPkgLastSegment(t *testing.T) {
	cases := map[string]string{
		"hetpnoc/internal/units":      "units",
		"hetpnoc/internal/units_test": "units",
		"units":                       "units",
		"us/units":                    "units",
		"hetpnoc/internal/simtools":   "simtools",
	}
	for in, want := range cases {
		if got := PkgLastSegment(in); got != want {
			t.Errorf("PkgLastSegment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRecvDefRecordsArrowRHS(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(ch chan int) int {
	v := <-ch
	return v
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "v", 4))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "<-ch" {
		t.Fatalf("defs of v = %v, want [<-ch]", got)
	}
}

func TestSelectRecvClauseDefines(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
	return 0
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "v", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "<-ch" {
		t.Fatalf("defs of select-bound v = %v, want [<-ch]", got)
	}
}

func TestGoClosureAssignForcesOpaque(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(in chan int) chan int {
	ch := in
	go func() { ch = nil }()
	return ch
}`)
	// The spawned literal rebinds ch at an unknown time; every def of
	// ch must go opaque so chanown never trusts a stale alias chain.
	defs := fi.DefsOf(useAt(t, fset, f, info, "ch", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "?" {
		t.Fatalf("defs of go-closure-assigned ch = %v, want [?]", got)
	}
}

func TestChannelRebindKillsDef(t *testing.T) {
	fi, fset, f, info := analyzeF(t, `package p
func F(a, b chan int) chan int {
	ch := a
	ch = b
	return ch
}`)
	defs := fi.DefsOf(useAt(t, fset, f, info, "ch", 5))
	if got := rhsStrings(defs); len(got) != 1 || got[0] != "b" {
		t.Fatalf("defs of rebound ch = %v, want [b]", got)
	}
}
