// Package fabric is a fixture mirror of the simulator fabric: seedflow
// recognizes the named type Fabric in any package whose import path
// ends in /fabric, with the same Restore/Reseed/run method vocabulary
// as the real one.
package fabric

type Checkpoint struct{ state uint64 }

type Fabric struct{ rng uint64 }

func New() *Fabric { return &Fabric{rng: 1} }

func (f *Fabric) Checkpoint() *Checkpoint { return &Checkpoint{state: f.rng} }

func (f *Fabric) Restore(cp *Checkpoint) error {
	f.rng = cp.state
	return nil
}

func (f *Fabric) Reseed(seed uint64) error {
	f.rng = seed
	return nil
}

func (f *Fabric) SetLoadScale(scale float64) error { return nil }

func (f *Fabric) Run(cycles int) error {
	f.rng += uint64(cycles)
	return nil
}

func (f *Fabric) RunContext(cycles int) error { return f.Run(cycles) }

func (f *Fabric) StepContext(cycles int) error { return f.Run(cycles) }

// Step is deliberately NOT a seedflow sink: cycle-by-cycle replay of a
// restored fabric is how checkpoint oracles verify bit-identity.
func (f *Fabric) Step() { f.rng++ }
