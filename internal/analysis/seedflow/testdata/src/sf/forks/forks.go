// Package forks exercises seedflow: the clean batch fork contract, a
// Reseed missing on one branch, Reseed arriving only after the run,
// checkpoint RNG state aliased into two fabrics, alias chains, and the
// sharedseed exemption.
package forks

import "sf/fabric"

// Good follows the batch fork contract: Restore → SetLoadScale →
// Reseed → StepContext, every iteration.
func Good(f *fabric.Fabric, cp *fabric.Checkpoint, seeds []uint64) error {
	for _, s := range seeds {
		if err := f.Restore(cp); err != nil {
			return err
		}
		if err := f.SetLoadScale(1.0); err != nil {
			return err
		}
		if err := f.Reseed(s); err != nil {
			return err
		}
		if err := f.StepContext(100); err != nil {
			return err
		}
	}
	return nil
}

// MissingOnBranch reseeds on only one path: the other replays the
// checkpoint's stream into Run.
func MissingOnBranch(f *fabric.Fabric, cp *fabric.Checkpoint, fresh bool) error {
	if err := f.Restore(cp); err != nil {
		return err
	}
	if fresh {
		if err := f.Reseed(7); err != nil {
			return err
		}
	}
	return f.Run(100) // want `restored checkpoint's RNG state: Restore is not followed by Reseed on every path before Run`
}

// ReseedAfterRun reseeds too late: the measurement window already
// consumed the recorded stream.
func ReseedAfterRun(f *fabric.Fabric, cp *fabric.Checkpoint) error {
	if err := f.Restore(cp); err != nil {
		return err
	}
	if err := f.RunContext(100); err != nil { // want `restored checkpoint's RNG state: Restore is not followed by Reseed on every path before RunContext`
		return err
	}
	return f.Reseed(7)
}

// Aliased restores one checkpoint's RNG stream into a second fabric
// while the first still carries it.
func Aliased(a, b *fabric.Fabric, cp *fabric.Checkpoint) error {
	if err := a.Restore(cp); err != nil {
		return err
	}
	if err := b.Restore(cp); err != nil { // want `checkpoint RNG state aliased: cp was already restored into another fabric`
		return err
	}
	if err := a.Reseed(1); err != nil {
		return err
	}
	return b.Reseed(2)
}

// ReseededBetween restores the same checkpoint twice, but the first
// fabric was reseeded before the second Restore: no live aliasing.
func ReseededBetween(a, b *fabric.Fabric, cp *fabric.Checkpoint) error {
	if err := a.Restore(cp); err != nil {
		return err
	}
	if err := a.Reseed(1); err != nil {
		return err
	}
	if err := b.Restore(cp); err != nil {
		return err
	}
	return b.Reseed(2)
}

// Renamed names one fabric through two variables: the value-flow layer
// resolves g to f, so the Reseed on f clears the Restore through g.
func Renamed(f *fabric.Fabric, cp *fabric.Checkpoint) error {
	g := f
	if err := g.Restore(cp); err != nil {
		return err
	}
	if err := f.Reseed(3); err != nil {
		return err
	}
	return g.Run(50)
}

// Refreshed rebinds the variable to a fresh fabric before running: the
// fresh fabric never held the checkpoint's stream.
func Refreshed(cp *fabric.Checkpoint) error {
	f := fabric.New()
	if err := f.Restore(cp); err != nil {
		return err
	}
	f = fabric.New()
	return f.Run(10)
}

// Replay steps the restored fabric cycle by cycle: Step is not a sink,
// so exact-replay checkpoint oracles stay clean.
func Replay(f *fabric.Fabric, cp *fabric.Checkpoint) error {
	if err := f.Restore(cp); err != nil {
		return err
	}
	for i := 0; i < 100; i++ {
		f.Step()
	}
	return nil
}

// SharedSeed deliberately replays the recorded stream, with a written
// justification.
func SharedSeed(f *fabric.Fabric, cp *fabric.Checkpoint) error {
	if err := f.Restore(cp); err != nil {
		return err
	}
	//hetpnoc:sharedseed fixture: exact-replay determinism oracle re-runs the recorded stream bit for bit
	return f.Run(100)
}

// SharedSeedNoWhy carries the directive but no justification.
func SharedSeedNoWhy(f *fabric.Fabric, cp *fabric.Checkpoint) error {
	if err := f.Restore(cp); err != nil {
		return err
	}
	//hetpnoc:sharedseed
	return f.Run(100) // want `//hetpnoc:sharedseed needs a justification`
}
