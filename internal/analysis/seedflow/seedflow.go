// Package seedflow checks the RNG fork lifecycle that the batch engine
// depends on. Restoring a fabric from a checkpoint copies the
// checkpoint's RNG state into the fabric; running it without reseeding
// replays the recorded random stream, which silently correlates what
// should be independent replicas. internal/batch/run.go is the
// contract: every fork goes Restore → SetLoadScale → Reseed →
// StepContext.
//
// seedflow enforces the contract with a path-sensitive may-analysis
// over the internal/analysis/cfg graph: a fabric that flows through
// Restore(cp) becomes stale, Reseed(...) clears it, and reaching
// Run/RunContext/StepContext while stale on ANY path is a finding
// (Step is deliberately not a sink — cycle-by-cycle replay of a
// restored fabric is how the checkpoint oracles verify bit-identity).
// Fabric variables are canonicalized through the value-flow layer
// (internal/analysis/vflow), so `g := f; g.Restore(cp); f.Reseed(s)`
// resolves to one fabric.
//
// The analysis also tracks which checkpoint's RNG state each stale
// fabric holds: restoring one checkpoint into a second fabric while a
// first fabric still carries its stream (no intervening Reseed) aliases
// one random stream into two live fabrics and is reported at the second
// Restore.
//
// Fabrics are recognized structurally — a method receiver of the named
// type Fabric declared in a package whose import path ends in /fabric —
// so fixture packages exercise the same rules as the real module.
// Deliberate stream replay carries //hetpnoc:sharedseed <why>.
package seedflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/cfg"
	"hetpnoc/internal/analysis/vflow"
)

// Analyzer flags fabric runs whose restored RNG state was never
// reseeded, and checkpoint RNG state aliased into two live fabrics.
var Analyzer = &analysis.Analyzer{
	Name:      "seedflow",
	Doc:       "enforce the Restore→Reseed fork contract: a restored fabric must be reseeded before it runs",
	RunModule: run,
}

const (
	staleSuggestion = "call Reseed between Restore and the run (the batch fork contract: " +
		"Restore → SetLoadScale → Reseed → StepContext, see internal/batch/run.go), " +
		"or annotate //hetpnoc:sharedseed <why> if replaying the recorded stream is deliberate"
	aliasSuggestion = "Reseed the first fabric before restoring the same checkpoint into another, " +
		"or annotate //hetpnoc:sharedseed <why> if the shared stream is deliberate"
)

func run(mp *analysis.ModulePass) error {
	vf := vflow.FromPass(mp)
	dc := analysis.NewDirectiveCache(mp.Fset)
	for _, u := range mp.Pkgs {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !mentionsRestore(fd.Body) {
					continue
				}
				c := &checker{
					mp:   mp,
					unit: u,
					dc:   dc,
					info: u.TypesInfo,
					fi:   vf.FuncInfo(fd.Body, u.TypesInfo),
				}
				c.check()
			}
		}
	}
	return nil
}

// mentionsRestore cheaply gates the dataflow: without a Restore call no
// fact can ever be generated.
func mentionsRestore(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Restore" {
			found = true
		}
		return !found
	})
	return found
}

type checker struct {
	mp   *analysis.ModulePass
	unit *analysis.PackageUnit
	dc   *analysis.DirectiveCache
	info *types.Info
	fi   *vflow.FuncInfo
}

// Fact vocabulary:
//
//	"stale|<fabric>"           — fabric restored, not yet reseeded
//	"rng|<checkpoint>|<fabric>" — fabric currently holds that
//	                              checkpoint's RNG stream
func (c *checker) check() {
	g := c.fi.Graph
	in := g.ForwardMay(cfg.NewFactSet(), func(n ast.Node, facts cfg.FactSet) {
		c.apply(n, facts, nil)
	})
	for _, blk := range g.Blocks {
		entry, reachable := in[blk]
		if !reachable {
			continue
		}
		facts := entry.Clone()
		for _, n := range blk.Nodes {
			c.apply(n, facts, c.report)
		}
	}
}

// apply interprets one cfg node's fabric calls against facts, in AST
// order. With report nil it is the pure transfer function for the
// fixpoint; the replay pass passes the reporter.
func (c *checker) apply(n ast.Node, facts cfg.FactSet, report func(n ast.Node, msg, sugg string)) {
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false // runs at an unknown time; analyzed on its own facts
		case *ast.AssignStmt:
			// Rebinding a variable discards whatever fabric state it
			// named: f = fabric.New(...) is fresh, never stale.
			for _, lhs := range nd.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					c.killFabric(facts, c.key(id))
				}
			}
		case *ast.CallExpr:
			c.call(nd, facts, report)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr, facts cfg.FactSet, report func(n ast.Node, msg, sugg string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || !isFabricMethod(obj) {
		return
	}
	fkey := c.key(sel.X)
	switch sel.Sel.Name {
	case "Restore":
		if len(call.Args) < 1 {
			return
		}
		cpkey := c.key(call.Args[0])
		if report != nil {
			prefix := "rng|" + cpkey + "|"
			for _, f := range facts.Sorted() {
				if strings.HasPrefix(f, prefix) && f != prefix+fkey {
					report(call, fmt.Sprintf(
						"checkpoint RNG state aliased: %s was already restored into another fabric that has not been reseeded",
						types.ExprString(call.Args[0])), aliasSuggestion)
					break
				}
			}
		}
		c.killFabric(facts, fkey)
		facts.Add("stale|" + fkey)
		facts.Add(prefixJoin(cpkey, fkey))
	case "Reseed":
		c.killFabric(facts, fkey)
	case "Run", "RunContext", "StepContext":
		if report != nil && facts.Has("stale|"+fkey) {
			report(call, fmt.Sprintf(
				"fabric runs with a restored checkpoint's RNG state: Restore is not followed by Reseed on every path before %s",
				sel.Sel.Name), staleSuggestion)
		}
	}
}

func prefixJoin(cpkey, fkey string) string { return "rng|" + cpkey + "|" + fkey }

// killFabric removes every fact about the fabric key: its staleness and
// any checkpoint stream it held.
func (c *checker) killFabric(facts cfg.FactSet, fkey string) {
	facts.Remove("stale|" + fkey)
	for _, f := range facts.Sorted() {
		if strings.HasPrefix(f, "rng|") && strings.HasSuffix(f, "|"+fkey) {
			facts.Remove(f)
		}
	}
}

// report delivers the diagnostic unless a justified
// //hetpnoc:sharedseed covers the call's line.
func (c *checker) report(n ast.Node, msg, sugg string) {
	if dirs := c.dc.For(c.unit, n.Pos()); dirs != nil {
		if dir, ok := dirs.Covering(n, analysis.DirectiveSharedseed); ok {
			if dir.Arg == "" {
				c.mp.Reportf(n.Pos(),
					"//hetpnoc:sharedseed needs a justification explaining why replaying the checkpoint's RNG stream is correct",
					"//hetpnoc:sharedseed <why the shared stream is deliberate>")
			}
			return
		}
	}
	c.mp.Reportf(n.Pos(), msg, sugg)
}

// key canonicalizes the expression naming a fabric or checkpoint.
// Identifiers resolve through vflow single-definition chains to the
// original variable (`g := f` names the same fabric as f); anything
// else keys on its printed form.
func (c *checker) key(e ast.Expr) string {
	e = unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if v := c.canonical(id); v != nil {
			return fmt.Sprintf("v%d", v.Pos())
		}
	}
	return "e " + types.ExprString(e)
}

// canonical follows single-def ident chains: while the identifier has
// exactly one reaching definition whose right-hand side is another
// identifier, the value is that variable.
func (c *checker) canonical(id *ast.Ident) *types.Var {
	v, ok := c.info.Uses[id].(*types.Var)
	if !ok {
		if dv, ok := c.info.Defs[id].(*types.Var); ok {
			return dv
		}
		return nil
	}
	for depth := 0; depth < 8; depth++ {
		defs := c.fi.DefsOf(id)
		if len(defs) != 1 || defs[0].RHS == nil {
			return v
		}
		rid, ok := unparen(defs[0].RHS).(*ast.Ident)
		if !ok {
			return v
		}
		rv, ok := c.info.Uses[rid].(*types.Var)
		if !ok {
			return v
		}
		v, id = rv, rid
	}
	return v
}

// isFabricMethod reports whether obj is a method of the named type
// Fabric declared in a package whose last path segment is "fabric".
func isFabricMethod(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Name() != "Fabric" || tn.Pkg() == nil {
		return false
	}
	return vflow.PkgLastSegment(tn.Pkg().Path()) == "fabric"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
