package seedflow_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/seedflow"
)

func TestSeedflowFixtures(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), seedflow.Analyzer, "sf/forks")
}
