// Package apfix exercises apistable against a deliberately stale
// golden: one entry removed, one changed, one missing.
package apfix // want "exported Gone .*was removed from the API snapshot"

// Kept matches the snapshot exactly.
func Kept(n int) int { return n }

// Changed has a different signature than the snapshot records.
func Changed(s string) int { return len(s) } // want "exported Changed changed"

// Added is absent from the snapshot.
func Added() {} // want "exported Added .*is not in the API snapshot"

// Box matches, including its exported field and method; the unexported
// field is not part of the surface.
type Box struct {
	Size   int
	hidden bool
}

// Grow matches the snapshot.
func (b *Box) Grow(by int) { b.Size += by; _ = b.hidden }
