// Package apistable freezes the exported API of designated packages
// against golden snapshots. The repo's public surface — the root
// hetpnoc package and internal/experiments, which downstream scripts
// drive — must not drift silently: removing or changing an exported
// declaration breaks callers, and *adding* one is a commitment that
// deserves an explicit snapshot update in the same diff.
//
// The golden for package P lives at <P's dir>/testdata/api/<last import
// path segment>.golden and holds one sorted "key\tdescriptor" line per
// exported declaration, method and struct field. Running
// `hetpnoclint -update` (or `make lint -- -update` equivalents)
// regenerates the snapshots; the diff then shows the API change for
// review, exactly like any other golden in this repo.
//
// Packages checked: every package listed in Required (missing golden is
// itself a diagnostic), plus any package that already has a golden —
// which is how fixture packages opt in.
package apistable

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hetpnoc/internal/analysis"
)

// Update, when set (by cmd/hetpnoclint -update), rewrites the golden
// snapshots instead of diffing against them.
var Update bool

// Required lists import paths whose API must have a snapshot; a missing
// golden for these is an error, not a skip.
var Required = []string{
	"hetpnoc",
	"hetpnoc/internal/experiments",
}

// Analyzer is the apistable check.
var Analyzer = &analysis.Analyzer{
	Name: "apistable",
	Doc: "diff exported package API against a golden snapshot\n\n" +
		"removed, changed or added exported declarations must be\n" +
		"accompanied by a regenerated testdata/api/*.golden (run with\n" +
		"-update); silent API drift is how downstream experiment scripts\n" +
		"break.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if strings.HasSuffix(path, "_test") || strings.HasSuffix(path, ".test") {
		return nil
	}
	if len(pass.Files) == 0 {
		return nil
	}
	pkgPos := pass.Files[0].Package
	dir := filepath.Dir(pass.Fset.Position(pkgPos).Filename)
	segments := strings.Split(path, "/")
	golden := filepath.Join(dir, "testdata", "api", segments[len(segments)-1]+".golden")

	required := false
	for _, r := range Required {
		if path == r {
			required = true
		}
	}
	existing, err := os.ReadFile(golden)
	if err != nil && !required {
		return nil // package has not opted in
	}

	got := render(pass)
	if Update {
		if mkErr := os.MkdirAll(filepath.Dir(golden), 0o755); mkErr != nil {
			return mkErr
		}
		return os.WriteFile(golden, []byte(strings.Join(got.lines(), "\n")+"\n"), 0o644)
	}
	if err != nil {
		pass.Reportf(pkgPos,
			fmt.Sprintf("package %s has no API snapshot at %s", path, golden),
			"run `go run ./cmd/hetpnoclint -update ./...` to create it")
		return nil
	}

	want := parseGolden(string(existing))
	diff(pass, pkgPos, got, want, golden)
	return nil
}

// api maps snapshot key -> descriptor, plus the position of each key's
// declaration for diagnostics.
type api struct {
	desc map[string]string
	pos  map[string]token.Pos
}

func (a *api) lines() []string {
	out := make([]string, 0, len(a.desc))
	for k, d := range a.desc {
		out = append(out, k+"\t"+d)
	}
	sort.Strings(out)
	return out
}

func parseGolden(s string) *api {
	a := &api{desc: map[string]string{}, pos: map[string]token.Pos{}}
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if line == "" {
			continue
		}
		key, desc, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		a.desc[key] = desc
	}
	return a
}

// render snapshots the exported API of the package under analysis.
// Objects declared in _test.go files are not API and are excluded.
func render(pass *analysis.Pass) *api {
	a := &api{desc: map[string]string{}, pos: map[string]token.Pos{}}
	qual := types.RelativeTo(pass.Pkg)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() || fromTestFile(pass, obj.Pos()) {
			continue
		}
		switch obj := obj.(type) {
		case *types.Const:
			a.put(name, "const "+types.TypeString(obj.Type(), qual), obj.Pos())
		case *types.Var:
			a.put(name, "var "+types.TypeString(obj.Type(), qual), obj.Pos())
		case *types.Func:
			a.put(name, "func "+types.TypeString(obj.Type(), qual), obj.Pos())
		case *types.TypeName:
			renderType(a, obj, qual, pass)
		}
	}
	return a
}

func renderType(a *api, obj *types.TypeName, qual types.Qualifier, pass *analysis.Pass) {
	name := obj.Name()
	if obj.IsAlias() {
		a.put(name, "type = "+types.TypeString(obj.Type(), qual), obj.Pos())
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		a.put(name, "type "+types.TypeString(obj.Type().Underlying(), qual), obj.Pos())
		return
	}
	under := named.Underlying()
	if st, ok := under.(*types.Struct); ok {
		a.put(name, "type struct", obj.Pos())
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			a.put(name+"."+f.Name(), "field "+types.TypeString(f.Type(), qual), f.Pos())
		}
	} else {
		a.put(name, "type "+types.TypeString(under, qual), obj.Pos())
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !m.Exported() || fromTestFile(pass, m.Pos()) {
			continue
		}
		a.put(name+"."+m.Name(), "method "+types.TypeString(m.Type(), qual), m.Pos())
	}
}

func (a *api) put(key, desc string, pos token.Pos) {
	a.desc[key] = desc
	a.pos[key] = pos
}

func fromTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// diff reports removed, changed and added API relative to the golden.
func diff(pass *analysis.Pass, pkgPos token.Pos, got, want *api, golden string) {
	hint := "if the change is intended, regenerate the snapshot with " +
		"`go run ./cmd/hetpnoclint -update ./...` and review the diff of " + golden

	var removed []string
	for key := range want.desc {
		if _, ok := got.desc[key]; !ok {
			removed = append(removed, key)
		}
	}
	sort.Strings(removed)
	for _, key := range removed {
		pass.Reportf(pkgPos,
			fmt.Sprintf("exported %s (%s) was removed from the API snapshot", key, want.desc[key]),
			hint)
	}

	var keys []string
	for key := range got.desc {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		w, inWant := want.desc[key]
		switch {
		case !inWant:
			pass.Reportf(got.pos[key],
				fmt.Sprintf("exported %s (%s) is not in the API snapshot", key, got.desc[key]),
				hint)
		case w != got.desc[key]:
			pass.Reportf(got.pos[key],
				fmt.Sprintf("exported %s changed: snapshot has %q, code has %q", key, w, got.desc[key]),
				hint)
		}
	}
}
