package apistable_test

import (
	"os"
	"path/filepath"
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/apistable"
)

func TestApistable(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), apistable.Analyzer, "apfix")
}

// TestUpdateRoundTrip checks -update semantics: Update writes a golden
// that the very next plain run accepts without diagnostics.
func TestUpdateRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "src", "apup")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package apup

// Hello is exported API.
func Hello(n int) int { return n }

// T is exported API with a field and a method.
type T struct{ N int }

// M is exported API.
func (t T) M() {}
`
	if err := os.WriteFile(filepath.Join(dir, "apup.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Opt the package in: a golden (however stale) marks it as
	// API-frozen; -update then refreshes it. Packages with no golden are
	// only snapshotted when listed in apistable.Required.
	golden := filepath.Join(dir, "testdata", "api", "apup.golden")
	if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(golden, []byte("Stale\tfunc func()\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	apistable.Update = true
	analysistest.Run(t, tmp, apistable.Analyzer, "apup")
	apistable.Update = false

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("update did not write the golden: %v", err)
	}
	want := "Hello\tfunc func(n int) int\n" +
		"T\ttype struct\n" +
		"T.M\tmethod func()\n" +
		"T.N\tfield int\n"
	if string(data) != want {
		t.Errorf("golden mismatch\ngot:\n%s\nwant:\n%s", data, want)
	}

	// A plain run against the freshly written golden must be clean; the
	// fixture has no want comments, so any diagnostic fails the test.
	analysistest.Run(t, tmp, apistable.Analyzer, "apup")
}
