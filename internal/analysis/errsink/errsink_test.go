package errsink_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errsink.Analyzer, "eefix")
}
