// Package errsink flags expression statements that silently drop an
// error result. A simulator that swallows an error keeps producing
// numbers — wrong ones — so every dropped error in non-test code is a
// candidate silent-corruption bug.
//
// Scope is deliberately narrower than errcheck:
//
//   - only bare expression statements are flagged: `f()` where f
//     returns an error. Assignments, even `_ = f()`, are explicit
//     decisions and pass; the blank assignment is exactly the
//     mechanical fix this analyzer suggests.
//   - test files are exempt.
//   - `defer f()` and `go f()` are exempt: cleanup- and
//     fire-and-forget-path error handling is a design choice the
//     analyzer cannot adjudicate mechanically.
//   - writes that cannot fail are allowlisted: fmt.Print* to stdout,
//     fmt.Fprint* to os.Stdout / os.Stderr / *bytes.Buffer /
//     *strings.Builder, and the Write* methods of bytes.Buffer and
//     strings.Builder themselves (their error results are
//     documentation-guaranteed nil).
package errsink

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"hetpnoc/internal/analysis"
)

// Analyzer is the errsink check.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc: "flag expression statements that drop an error result\n\n" +
		"a call whose error result is neither assigned nor checked is a\n" +
		"silent-corruption bug in a simulator; discard explicitly with\n" +
		"`_ =` when the drop is intended.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	t := pass.TypeOf(call)
	if t == nil {
		return
	}
	results := 1
	errAt := -1
	if tup, ok := t.(*types.Tuple); ok {
		results = tup.Len()
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				errAt = i
			}
		}
	} else if isErrorType(t) {
		errAt = 0
	}
	if errAt < 0 || allowlisted(pass, call) {
		return
	}
	name := calleeName(call)
	// The mechanical fix is the explicit blank assignment, with one
	// blank per result so multi-value calls still compile.
	blanks := strings.Repeat("_, ", results-1) + "_ = "
	pass.Report(analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: fmt.Sprintf("error result of %s is silently dropped", name),
		Suggestion: "handle the error, or make the drop explicit with a blank " +
			"assignment so readers know it is intentional",
		Fixes: []analysis.SuggestedFix{{
			Message:   fmt.Sprintf("discard explicitly: %s%s(...)", blanks, name),
			TextEdits: []analysis.TextEdit{{Pos: call.Pos(), End: call.Pos(), NewText: blanks}},
		}},
	})
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeName renders the called expression for the diagnostic message.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// allowlisted reports whether call is a write that cannot fail.
func allowlisted(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		// Methods of bytes.Buffer and strings.Builder never return a
		// non-nil error (documented guarantee).
		return isNeverFailWriter(recv.Type())
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if strings.HasPrefix(name, "Print") {
		return true // stdout: nothing actionable on failure
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return isNeverFailDest(pass, call.Args[0])
	}
	return false
}

// isNeverFailDest reports whether the fmt.Fprint* destination cannot
// produce an actionable error: the process std streams or an in-memory
// buffer/builder.
func isNeverFailDest(pass *analysis.Pass, dest ast.Expr) bool {
	if sel, ok := dest.(*ast.SelectorExpr); ok {
		if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok &&
			v.Pkg() != nil && v.Pkg().Path() == "os" &&
			(v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	t := pass.TypeOf(dest)
	return t != nil && isNeverFailWriter(t)
}

func isNeverFailWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	}
	return false
}
