// Package eefix exercises errsink: dropped errors, explicit discards
// and the never-fail writer allowlist.
package eefix

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func failPair() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

type dev struct{}

func (dev) Flush() error { return nil }

func bad(d dev) {
	fail()     // want "error result of fail is silently dropped"
	failPair() // want "error result of failPair is silently dropped"
	d.Flush()  // want "error result of d.Flush is silently dropped"
}

func badWriter(w io.Writer) {
	fmt.Fprintf(w, "x") // want "error result of fmt.Fprintf is silently dropped"
}

func good(w io.Writer) error {
	if err := fail(); err != nil {
		return err
	}
	_ = fail() // explicit discard: allowed
	_, _ = failPair()
	pure()       // no error result
	defer fail() // cleanup path: exempt
	go fail()    // fire-and-forget: exempt

	fmt.Println("stdout never actionable")
	fmt.Fprintln(os.Stderr, "std streams allowlisted")
	fmt.Fprint(os.Stdout, "likewise")

	var buf bytes.Buffer
	buf.WriteString("in-memory writes cannot fail")
	fmt.Fprintf(&buf, "nor via fmt")

	var sb strings.Builder
	sb.WriteByte('x')
	fmt.Fprintf(&sb, "same for Builder")

	return fail()
}
