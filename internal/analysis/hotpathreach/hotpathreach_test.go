package hotpathreach_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/hotpathreach"
)

func TestHotpathreach(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), hotpathreach.Analyzer,
		"reach/hot",
	)
}
