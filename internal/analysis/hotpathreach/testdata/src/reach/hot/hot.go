// Package hot exercises hotpathreach: helpers reachable from the
// annotated root inherit the hot-path allocation rules, with the call
// chain appended to each diagnostic.
package hot

import (
	"fmt"

	"reach/helper"
)

// Step is the annotated root. Its own body is hotpathalloc's job, so
// hotpathreach must not re-report the fmt call below.
//
//hetpnoc:hotpath
func Step(vals []int) {
	_ = fmt.Sprintf("cycle %d", len(vals))
	tick(vals)
	_ = helper.Sum(vals)
	//hetpnoc:coldcall diagnostics only run on invariant violation
	explain(vals)
	//hetpnoc:coldcall
	noWhy(vals) // want `//hetpnoc:coldcall needs a justification for leaving the hot path`
}

func tick(vals []int) {
	_ = fmt.Sprintf("tick %d", len(vals)) // want `fmt\.Sprintf formats \(and boxes its operands\) on a hot path \(hot path: hot\.Step -> hot\.tick\)`
}

// explain is severed by a justified coldcall; its fmt call must not be
// reported.
func explain(vals []int) {
	_ = fmt.Sprintf("bad %v", vals)
}

// noWhy's coldcall lacks a justification: the directive itself is the
// error, and the edge stays severed, so this body is not checked.
func noWhy(vals []int) {
	_ = fmt.Sprintf("why %v", vals)
}
