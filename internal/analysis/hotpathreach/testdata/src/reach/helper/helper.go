// Package helper is unannotated code pulled onto the hot path by its
// callers in package hot.
package helper

// Sum is reached from hot.Step.
func Sum(vals []int) int {
	var out []int
	out = grow(out, vals)
	return len(out)
}

func grow(out, vals []int) []int {
	for _, v := range vals {
		out = append(out, v) // amortized reuse, clean
	}
	label(len(vals))
	return out
}

func label(n int) {
	s := "n="
	s += "x" // want `string concatenation allocates in a hot-path function \(hot path: hot\.Step -> helper\.Sum -> helper\.grow -> helper\.label\)`
	_, _ = s, n
}
