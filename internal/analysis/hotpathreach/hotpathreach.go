// Package hotpathreach extends hotpathalloc across the call graph:
// every module function reachable from a //hetpnoc:hotpath root
// inherits the zero-allocation rules without needing its own
// annotation. The intraprocedural analyzer sees only annotated bodies,
// so an allocation hidden one call deep — Fabric.Step calling an
// unannotated helper that appends into a fresh slice — used to escape
// the gate entirely; this analyzer closes that hole.
//
// Each diagnostic carries the shortest root→callee call chain, so a
// report reads like a stack trace ending at the allocation site.
//
// Deliberate slow-path exits (error formatting, one-shot warm-up work)
// are cut with a justified directive, at either granularity:
//
//	//hetpnoc:coldcall error path, runs at most once per simulation
//	return r.explainDeadlock(now)
//
// severs that one call site, while the same directive in a function's
// doc comment
//
//	// growBuf doubles the ring capacity.
//	//
//	//hetpnoc:coldcall amortized growth, not steady-state
//	func (a *Arena) growBuf(...)
//
// severs every edge into the function: it is a declared slow path no
// matter who calls it.
//
// The BFS result is shared: allocproof reuses the same reachable set to
// attach compiler-proven escape facts to hot functions, so "reachable
// from a hot root" means exactly one thing across the suite.
//
// Soundness caveats (shared with the call graph): calls through
// function-typed values resolve to no callee, so work dispatched via
// stored closures (the fabric's hoisted ejection callbacks) must keep
// its own //hetpnoc:hotpath annotation; interface calls resolve only to
// in-module implementations.
package hotpathreach

import (
	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
	"hetpnoc/internal/analysis/hotpathalloc"
)

// Analyzer is the hotpathreach check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathreach",
	Doc: "apply hot-path allocation rules to every function reachable from a //hetpnoc:hotpath root\n\n" +
		"The cycle loop's callees are as hot as the loop itself; this\n" +
		"whole-program pass walks the call graph from every annotated root\n" +
		"and runs hotpathalloc's checks on each reachable module function,\n" +
		"reporting violations with the full root→callee call chain.\n" +
		"Sever deliberate slow-path calls with //hetpnoc:coldcall <why>,\n" +
		"at the call site or in the callee's doc comment.",
	RunModule: run,
}

// Visit is one BFS tree entry: how a node was first reached. Via == nil
// marks a //hetpnoc:hotpath root.
type Visit struct {
	Node *callgraph.Node
	Via  *callgraph.Edge
}

// Reach is the hot-path reachability of one module: the shortest-path
// BFS tree from every //hetpnoc:hotpath root, with coldcall edges (call
// site or callee declaration) severed.
type Reach struct {
	// Graph is the call graph the BFS ran over. Consumers must iterate
	// this instance: Parent is keyed by its node pointers, and a nil
	// mp.Cache (as in the analysistest harness) makes callgraph.FromPass
	// rebuild a distinct graph per call.
	Graph *callgraph.Graph

	// Parent maps each reached node to its first visit; roots map to a
	// Visit with Via == nil.
	Parent map[*callgraph.Node]*Visit

	// Unjustified are coldcall directives without the required
	// justification, encountered while severing (run reports these).
	Unjustified []*callgraph.Edge
}

// Reached reports whether n is hot: a root or reachable from one.
func (r *Reach) Reached(n *callgraph.Node) bool {
	_, ok := r.Parent[n]
	return ok
}

// ChainOf renders the shortest root→n call chain recorded by the BFS,
// e.g. "fabric.Fabric.Step -> fabric.Fabric.pumpInject -> packet.Queue.Push".
func (r *Reach) ChainOf(n *callgraph.Node) string {
	var names []string
	for v := r.Parent[n]; v != nil; {
		names = append(names, v.Node.Name())
		if v.Via == nil {
			break
		}
		v = r.Parent[v.Via.Caller]
	}
	var sb []byte
	for i := len(names) - 1; i >= 0; i-- {
		sb = append(sb, names[i]...)
		if i > 0 {
			sb = append(sb, " -> "...)
		}
	}
	return string(sb)
}

// FromPass returns the module's hot-path reachability, memoized in
// mp.Cache so hotpathreach and allocproof share one BFS.
func FromPass(mp *analysis.ModulePass) *Reach {
	const key = "hotpathreach"
	if r, ok := mp.Cache[key].(*Reach); ok {
		return r
	}
	r := build(mp)
	if mp.Cache != nil {
		mp.Cache[key] = r
	}
	return r
}

// build runs the multi-source BFS from the annotated roots. FIFO order
// over the deterministic edge order makes Parent a shortest-path tree
// and the reported chains reproducible.
func build(mp *analysis.ModulePass) *Reach {
	g := callgraph.FromPass(mp)
	dirs := analysis.NewDirectiveCache(mp.Fset)

	r := &Reach{Graph: g, Parent: make(map[*callgraph.Node]*Visit)}
	var queue []*Visit
	for _, n := range g.Sorted {
		if analysis.HasHotpath(n.Decl) {
			v := &Visit{Node: n}
			r.Parent[n] = v
			queue = append(queue, v)
		}
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range v.Node.Out {
			cold, justified := coldCall(dirs, e)
			if cold && !justified {
				r.Unjustified = append(r.Unjustified, e)
			}
			if cold {
				continue
			}
			if _, seen := r.Parent[e.Callee]; seen {
				continue
			}
			nv := &Visit{Node: e.Callee, Via: e}
			r.Parent[e.Callee] = nv
			queue = append(queue, nv)
		}
	}
	return r
}

func run(mp *analysis.ModulePass) error {
	reach := FromPass(mp)
	g := reach.Graph

	for _, e := range reach.Unjustified {
		mp.Reportf(e.Pos(),
			"//hetpnoc:coldcall needs a justification for leaving the hot path",
			"//hetpnoc:coldcall <why this call never runs in steady state>")
	}

	// Check every reached function that is not itself annotated (those
	// are hotpathalloc's job), chain appended to each diagnostic.
	for _, n := range g.Sorted {
		v, reached := reach.Parent[n]
		if !reached || v.Via == nil {
			continue
		}
		chain := reach.ChainOf(n)
		pass := mp.PassFor(n.Unit)
		inner := pass.Report
		pass.Report = func(d analysis.Diagnostic) {
			d.Message += " (hot path: " + chain + ")"
			inner(d)
		}
		hotpathalloc.Check(pass, n.Decl)
	}
	return nil
}

// coldCall reports whether edge e is severed by a coldcall directive —
// on the call site or on the callee's declaration — and whether that
// directive carries the required justification.
func coldCall(dirs *analysis.DirectiveCache, e *callgraph.Edge) (cold, justified bool) {
	if d := dirs.For(e.Caller.Unit, e.Site.Pos()); d != nil {
		if dir, ok := d.Covering(e.Site, analysis.DirectiveColdcall); ok {
			return true, dir.Arg != ""
		}
	}
	if dir, ok := analysis.FuncDirective(e.Callee.Decl, analysis.DirectiveColdcall); ok {
		return true, dir.Arg != ""
	}
	return false, false
}
