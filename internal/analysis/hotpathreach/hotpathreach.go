// Package hotpathreach extends hotpathalloc across the call graph:
// every module function reachable from a //hetpnoc:hotpath root
// inherits the zero-allocation rules without needing its own
// annotation. The intraprocedural analyzer sees only annotated bodies,
// so an allocation hidden one call deep — Fabric.Step calling an
// unannotated helper that appends into a fresh slice — used to escape
// the gate entirely; this analyzer closes that hole.
//
// Each diagnostic carries the shortest root→callee call chain, so a
// report reads like a stack trace ending at the allocation site.
//
// Deliberate slow-path exits (error formatting, one-shot warm-up work)
// are cut with a justified call-site directive:
//
//	//hetpnoc:coldcall error path, runs at most once per simulation
//	return r.explainDeadlock(now)
//
// The directive severs the edge at that call site only; other calls to
// the same function from hot code are still traversed.
//
// Soundness caveats (shared with the call graph): calls through
// function-typed values resolve to no callee, so work dispatched via
// stored closures (the fabric's hoisted ejection callbacks) must keep
// its own //hetpnoc:hotpath annotation; interface calls resolve only to
// in-module implementations.
package hotpathreach

import (
	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
	"hetpnoc/internal/analysis/hotpathalloc"
)

// Analyzer is the hotpathreach check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathreach",
	Doc: "apply hot-path allocation rules to every function reachable from a //hetpnoc:hotpath root\n\n" +
		"The cycle loop's callees are as hot as the loop itself; this\n" +
		"whole-program pass walks the call graph from every annotated root\n" +
		"and runs hotpathalloc's checks on each reachable module function,\n" +
		"reporting violations with the full root→callee call chain.\n" +
		"Sever deliberate slow-path calls with //hetpnoc:coldcall <why>.",
	RunModule: run,
}

// visit is one BFS tree entry: how node was first reached. via == nil
// marks a //hetpnoc:hotpath root.
type visit struct {
	node *callgraph.Node
	via  *callgraph.Edge
}

func run(mp *analysis.ModulePass) error {
	g := callgraph.FromPass(mp)
	dirs := analysis.NewDirectiveCache(mp.Fset)

	// Multi-source BFS from the annotated roots. FIFO order over the
	// deterministic edge order makes parent a shortest-path tree and the
	// reported chains reproducible.
	parent := make(map[*callgraph.Node]*visit)
	var queue []*visit
	for _, n := range g.Sorted {
		if analysis.HasHotpath(n.Decl) {
			v := &visit{node: n}
			parent[n] = v
			queue = append(queue, v)
		}
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range v.node.Out {
			cold, justified := coldCall(dirs, e)
			if cold && !justified {
				mp.Reportf(e.Pos(),
					"//hetpnoc:coldcall needs a justification for leaving the hot path",
					"//hetpnoc:coldcall <why this call never runs in steady state>")
			}
			if cold {
				continue
			}
			if _, seen := parent[e.Callee]; seen {
				continue
			}
			nv := &visit{node: e.Callee, via: e}
			parent[e.Callee] = nv
			queue = append(queue, nv)
		}
	}

	// Check every reached function that is not itself annotated (those
	// are hotpathalloc's job), chain appended to each diagnostic.
	for _, n := range g.Sorted {
		v, reached := parent[n]
		if !reached || v.via == nil {
			continue
		}
		chain := chainOf(parent, n)
		pass := mp.PassFor(n.Unit)
		inner := pass.Report
		pass.Report = func(d analysis.Diagnostic) {
			d.Message += " (hot path: " + chain + ")"
			inner(d)
		}
		hotpathalloc.Check(pass, n.Decl)
	}
	return nil
}

// chainOf renders the shortest root→n call chain recorded by the BFS,
// e.g. "fabric.Fabric.Step -> fabric.Fabric.pumpInject -> packet.Queue.Push".
func chainOf(parent map[*callgraph.Node]*visit, n *callgraph.Node) string {
	var names []string
	for v := parent[n]; v != nil; {
		names = append(names, v.node.Name())
		if v.via == nil {
			break
		}
		v = parent[v.via.Caller]
	}
	var sb []byte
	for i := len(names) - 1; i >= 0; i-- {
		sb = append(sb, names[i]...)
		if i > 0 {
			sb = append(sb, " -> "...)
		}
	}
	return string(sb)
}

// coldCall reports whether edge e's call site carries a coldcall
// directive, and whether that directive has the required justification.
func coldCall(dirs *analysis.DirectiveCache, e *callgraph.Edge) (cold, justified bool) {
	d := dirs.For(e.Caller.Unit, e.Site.Pos())
	if d == nil {
		return false, false
	}
	dir, ok := d.Covering(e.Site, analysis.DirectiveColdcall)
	if !ok {
		return false, false
	}
	return true, dir.Arg != ""
}
