// Package callgraph builds a whole-program call graph over the
// module's type-checked packages, the substrate for the interprocedural
// hetpnoclint analyzers (hotpathreach, dettaint, lockorder). The loader
// type-checks every module package into one FileSet with shared object
// identity, so a *types.Func is the same pointer whether reached from
// its defining package or through an importer — nodes key on it
// directly.
//
// Resolution rules, in decreasing precision:
//
//   - Static calls (pkg.F(), f() for a declared f, method calls on
//     concrete receivers, method expressions T.M) resolve to exactly
//     one callee.
//   - Interface method calls resolve with class-hierarchy analysis
//     restricted to in-module implementing types: every named module
//     type whose method set (value or pointer) satisfies the receiver
//     interface contributes its concrete method as a callee. Out-of-
//     module implementations are invisible; callers that need soundness
//     against them must treat the site as open (see Node.Unknown).
//   - References to a declared function outside call position (method
//     values, functions passed as arguments, `go f` targets) become
//     KindRef edges: the function escapes into a value the caller hands
//     somewhere, so it may run wherever the caller runs.
//   - Calls through function-typed variables, fields and parameters are
//     soundly unknown: no callee can be named, so the site is recorded
//     on the caller's Unknown list instead of fabricating edges.
//
// Function literals are not separate nodes: a literal's body is
// attributed to the declaration that lexically contains it, which keeps
// "what can this function cause to run" a single per-node question.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"hetpnoc/internal/analysis"
)

// Kind classifies how an edge's callee was resolved.
type Kind uint8

const (
	// KindStatic is a direct call to a declared function or a method on
	// a concrete receiver.
	KindStatic Kind = iota
	// KindInterface is an interface method call resolved by CHA to an
	// in-module implementation.
	KindInterface
	// KindRef is a reference to a declared function outside call
	// position (method value, callback argument); the callee may run
	// at any time the caller chooses to invoke the value.
	KindRef
)

func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindInterface:
		return "interface"
	case KindRef:
		return "ref"
	}
	return "?"
}

// Edge is one resolved caller→callee relation.
type Edge struct {
	Caller, Callee *Node

	// Site is the resolving expression: the *ast.CallExpr for calls,
	// the referencing *ast.Ident / *ast.SelectorExpr for KindRef.
	// Directive lookups (//hetpnoc:coldcall) anchor on it.
	Site ast.Node

	Kind Kind
}

// Pos returns the edge's source position.
func (e *Edge) Pos() token.Pos { return e.Site.Pos() }

// ExternalCall is one call (or reference) whose target is declared
// outside the module — typically the standard library. dettaint matches
// these against its nondeterminism-source table.
type ExternalCall struct {
	Func *types.Func
	Pos  token.Pos
}

// Node is one module-declared function or method.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Unit *analysis.PackageUnit

	// Out and In are the resolved edges, in deterministic build order
	// (unit order, then file order, then source order).
	Out []*Edge
	In  []*Edge

	// External are call sites targeting out-of-module functions.
	External []ExternalCall

	// Unknown are call sites through function-typed values that resolve
	// to no declaration (closures stored in fields, parameters). The
	// callee set at these sites is open.
	Unknown []token.Pos
}

// Name renders the node for diagnostics: "Pkg.Func" or
// "Pkg.(Recv).Method" shortened to the package's base name.
func (n *Node) Name() string {
	f := n.Func
	name := f.Name()
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + name
	}
	return name
}

// Graph is the module call graph.
type Graph struct {
	Fset *token.FileSet

	// Nodes indexes every module-declared function by its object.
	Nodes map[*types.Func]*Node

	// Sorted holds the same nodes in deterministic build order; all
	// traversals that must be reproducible iterate it instead of the
	// map.
	Sorted []*Node
}

// NodeOf returns the node of the declared function obj, or nil when obj
// is not declared in the module.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.Nodes[obj] }

// FromPass returns the call graph of mp's packages, memoized in
// mp.Cache (when the driver provides one) so the module analyzers of
// one lint invocation share a single build.
func FromPass(mp *analysis.ModulePass) *Graph {
	const key = "callgraph"
	if g, ok := mp.Cache[key].(*Graph); ok {
		return g
	}
	g := Build(mp.Fset, mp.Pkgs)
	if mp.Cache != nil {
		mp.Cache[key] = g
	}
	return g
}

// Build constructs the call graph of units. Units must share one
// FileSet and one type-checking universe (the loader guarantees both).
func Build(fset *token.FileSet, units []*analysis.PackageUnit) *Graph {
	g := &Graph{Fset: fset, Nodes: make(map[*types.Func]*Node)}
	b := &builder{g: g}

	// Pass 1: a node per declared function, and the named-type universe
	// for interface resolution.
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, dup := g.Nodes[obj]; dup {
					continue // xtest units never redeclare, but stay safe
				}
				n := &Node{Func: obj, Decl: fd, Unit: u}
				g.Nodes[obj] = n
				g.Sorted = append(g.Sorted, n)
			}
		}
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				b.types = append(b.types, named)
			}
		}
	}

	// Pass 2: edges.
	for _, n := range g.Sorted {
		b.edges(n)
	}
	for _, n := range g.Sorted {
		for _, e := range n.Out {
			e.Callee.In = append(e.Callee.In, e)
		}
	}
	return g
}

type builder struct {
	g     *Graph
	types []*types.Named

	// implCache memoizes CHA results per interface type.
	implCache map[*types.Interface][]*types.Func
}

// edges walks n's body (function literals included) and resolves every
// call and function reference. ast.Inspect visits a CallExpr before its
// Fun child, so marking the call's naming identifier as consumed there
// keeps the reference cases from double-counting it — while the
// receiver expression under a call's selector is still fully traversed
// (it may contain further calls, as in a().b()).
func (b *builder) edges(n *Node) {
	info := n.Unit.TypesInfo
	consumed := make(map[*ast.Ident]bool)

	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			switch fun := unparen(nd.Fun).(type) {
			case *ast.Ident:
				consumed[fun] = true
			case *ast.SelectorExpr:
				consumed[fun.Sel] = true
			}
			b.call(n, info, nd)
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[nd.Sel].(*types.Func); ok && !consumed[nd.Sel] {
				consumed[nd.Sel] = true
				b.addRef(n, nd, obj)
			}
		case *ast.Ident:
			if consumed[nd] {
				return true
			}
			if obj, ok := info.Uses[nd].(*types.Func); ok {
				b.addRef(n, nd, obj)
			}
		}
		return true
	})
}

// call resolves one call expression.
func (b *builder) call(n *Node, info *types.Info, call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// Conversions and builtin calls are not function calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			b.add(n, call, obj, KindStatic)
			return
		case *types.Builtin, *types.Nil:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj, ok := sel.Obj().(*types.Func)
			if !ok {
				break // function-typed field: unknown callee
			}
			if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				b.interfaceCall(n, call, sel.Recv().Underlying().(*types.Interface), obj)
				return
			}
			// Concrete method call or method expression.
			b.add(n, call, obj, KindStatic)
			return
		}
		// Qualified call pkg.F or method expression on qualified type.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			b.add(n, call, obj, KindStatic)
			return
		}
	case *ast.FuncLit:
		return // body already attributed to n
	}
	n.Unknown = append(n.Unknown, call.Pos())
}

// interfaceCall resolves a call to iface method m with CHA over the
// module's named types.
func (b *builder) interfaceCall(n *Node, call *ast.CallExpr, iface *types.Interface, m *types.Func) {
	resolved := false
	for _, impl := range b.implementers(iface) {
		if impl.Name() == m.Name() && samePkgScope(impl, m) {
			if b.add(n, call, impl, KindInterface) {
				resolved = true
			}
		}
	}
	if !resolved {
		// No in-module implementation: the callee set is open (stdlib
		// or reflective implementations the module cannot see).
		n.Unknown = append(n.Unknown, call.Pos())
	}
}

// implementers returns the concrete methods of every module type whose
// value or pointer method set satisfies iface.
func (b *builder) implementers(iface *types.Interface) []*types.Func {
	if b.implCache == nil {
		b.implCache = make(map[*types.Interface][]*types.Func)
	}
	if impls, ok := b.implCache[iface]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range b.types {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			im := iface.Method(i)
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
			if f, ok := obj.(*types.Func); ok {
				impls = append(impls, f)
			}
		}
	}
	b.implCache[iface] = impls
	return impls
}

// samePkgScope reports whether an unexported method impl can satisfy
// interface method m (same package), or either is exported.
func samePkgScope(impl, m *types.Func) bool {
	if ast.IsExported(m.Name()) {
		return true
	}
	return impl.Pkg() == m.Pkg()
}

// add links caller n to obj, returning whether obj is a module node.
// Out-of-module targets land on n.External.
func (b *builder) add(n *Node, site ast.Node, obj *types.Func, kind Kind) bool {
	if callee, ok := b.g.Nodes[obj]; ok {
		n.Out = append(n.Out, &Edge{Caller: n, Callee: callee, Site: site, Kind: kind})
		return true
	}
	n.External = append(n.External, ExternalCall{Func: obj, Pos: site.Pos()})
	return false
}

func (b *builder) addRef(n *Node, site ast.Node, obj *types.Func) {
	if callee, ok := b.g.Nodes[obj]; ok {
		n.Out = append(n.Out, &Edge{Caller: n, Callee: callee, Site: site, Kind: KindRef})
		return
	}
	n.External = append(n.External, ExternalCall{Func: obj, Pos: site.Pos()})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
