package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"hetpnoc/internal/analysis"
)

// checkFixture type-checks the given sources (path → source) into one
// shared FileSet and universe, mirroring what the loader guarantees,
// and returns the units in the given order.
func checkFixture(t *testing.T, fset *token.FileSet, order []string, srcs map[string]string) []*analysis.PackageUnit {
	t.Helper()
	std := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	checked := make(map[string]*types.Package)
	var units []*analysis.PackageUnit
	imp := &fixtureImporter{checked: checked, std: std}
	for _, path := range order {
		f, err := parser.ParseFile(fset, path+".go", srcs[path], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", path, err)
		}
		checked[path] = pkg
		units = append(units, &analysis.PackageUnit{Path: path, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info})
	}
	return units
}

type fixtureImporter struct {
	checked map[string]*types.Package
	std     types.ImporterFrom
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.checked[path]; ok {
		return p, nil
	}
	return fi.std.ImportFrom(path, "", 0)
}

const srcA = `package a

type Doer interface{ Do() int }

type Impl struct{}

func (Impl) Do() int { return 1 }

func Helper() int { return 2 }
`

const srcB = `package b

import (
	"strings"

	"test/a"
)

func Use(d a.Doer) int { return d.Do() }

func Static() int { return a.Helper() }

func Local() int { return helper() }

func helper() int { return 0 }

type S struct{}

func (s S) M() int { return 0 }

func MethodCall() int {
	var s S
	return s.M()
}

func Ref() func() int {
	var s S
	return s.M
}

func UnknownCall(f func() int) int { return f() }

func LitBody() {
	f := func() { helper2() }
	f()
}

func helper2() {}

func External() string { return strings.ToUpper("x") }

func Nested() int { return get().M() }

func get() S { return S{} }
`

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	units := checkFixture(t, fset, []string{"test/a", "test/b"}, map[string]string{
		"test/a": srcA,
		"test/b": srcB,
	})
	return Build(fset, units)
}

func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Sorted {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// out collects "kind callee" strings of n's edges, in order.
func out(n *Node) []string {
	var got []string
	for _, e := range n.Out {
		got = append(got, e.Kind.String()+" "+e.Callee.Name())
	}
	return got
}

func wantOut(t *testing.T, n *Node, want ...string) {
	t.Helper()
	got := out(n)
	if len(got) != len(want) {
		t.Fatalf("%s: edges = %v, want %v", n.Name(), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: edge %d = %q, want %q", n.Name(), i, got[i], want[i])
		}
	}
}

func TestStaticCalls(t *testing.T) {
	g := buildTestGraph(t)
	wantOut(t, node(t, g, "b.Static"), "static a.Helper")
	wantOut(t, node(t, g, "b.Local"), "static b.helper")
	wantOut(t, node(t, g, "b.MethodCall"), "static b.S.M")
}

func TestInterfaceCallResolvesToModuleImpl(t *testing.T) {
	g := buildTestGraph(t)
	n := node(t, g, "b.Use")
	wantOut(t, n, "interface a.Impl.Do")
	if len(n.Unknown) != 0 {
		t.Errorf("b.Use: unexpected unknown sites %v", n.Unknown)
	}
}

func TestMethodValueIsRefEdge(t *testing.T) {
	g := buildTestGraph(t)
	wantOut(t, node(t, g, "b.Ref"), "ref b.S.M")
}

func TestFunctionTypedCallIsUnknown(t *testing.T) {
	g := buildTestGraph(t)
	n := node(t, g, "b.UnknownCall")
	wantOut(t, n)
	if len(n.Unknown) != 1 {
		t.Fatalf("b.UnknownCall: unknown sites = %d, want 1", len(n.Unknown))
	}
}

func TestFuncLitBodyAttributedToEnclosingDecl(t *testing.T) {
	g := buildTestGraph(t)
	n := node(t, g, "b.LitBody")
	// The literal's helper2 call belongs to LitBody; calling the
	// function-typed local f is soundly unknown.
	wantOut(t, n, "static b.helper2")
	if len(n.Unknown) != 1 {
		t.Fatalf("b.LitBody: unknown sites = %d, want 1", len(n.Unknown))
	}
	h := node(t, g, "b.helper2")
	if len(h.In) != 1 || h.In[0].Caller != n {
		t.Errorf("b.helper2: In = %v, want one edge from b.LitBody", out(h))
	}
}

func TestExternalCallRecorded(t *testing.T) {
	g := buildTestGraph(t)
	n := node(t, g, "b.External")
	wantOut(t, n)
	if len(n.External) != 1 || n.External[0].Func.Name() != "ToUpper" {
		t.Fatalf("b.External: external calls = %v, want strings.ToUpper", n.External)
	}
}

func TestNestedReceiverCallKeepsBothEdges(t *testing.T) {
	g := buildTestGraph(t)
	// get().M(): the receiver expression's call must not be swallowed by
	// the method call's traversal.
	wantOut(t, node(t, g, "b.Nested"), "static b.S.M", "static b.get")
}
