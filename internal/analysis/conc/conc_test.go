package conc_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/conc"
)

// load type-checks src as package p and builds the conc module over it.
func load(t *testing.T, src string) (*conc.Module, *analysis.PackageUnit) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	unit := &analysis.PackageUnit{Path: "p", Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
	mp := &analysis.ModulePass{Fset: fset, Pkgs: []*analysis.PackageUnit{unit}, Cache: map[string]any{}}
	return conc.FromPass(mp), unit
}

// fn finds the summarized function named name.
func fn(t *testing.T, m *conc.Module, name string) *conc.FuncInfo {
	t.Helper()
	for _, fi := range m.Sorted {
		if fi.Obj.Name() == name {
			return fi
		}
	}
	t.Fatalf("no function %q in module", name)
	return nil
}

func TestSpawnCollection(t *testing.T) {
	m, _ := load(t, `package p

func helper() {}

func F(fnv func()) {
	go helper()
	go func() { helper() }()
	go fnv()
}
`)
	f := fn(t, m, "F")
	if len(f.Spawns) != 3 {
		t.Fatalf("got %d spawns, want 3", len(f.Spawns))
	}
	if f.Spawns[0].Callee == nil || f.Spawns[0].Callee.Name() != "helper" {
		t.Errorf("spawn 0: want static callee helper, got %+v", f.Spawns[0])
	}
	if f.Spawns[1].Lit == nil {
		t.Errorf("spawn 1: want a function literal")
	}
	if f.Spawns[2].Callee != nil || f.Spawns[2].Lit != nil {
		t.Errorf("spawn 2: function-typed value must stay unresolved, got %+v", f.Spawns[2])
	}
}

func TestWGOpsAndSpawnAttribution(t *testing.T) {
	m, _ := load(t, `package p

import "sync"

func F(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`)
	f := fn(t, m, "F")
	if len(f.WGOps) != 3 {
		t.Fatalf("got %d WaitGroup ops, want 3: %+v", len(f.WGOps), f.WGOps)
	}
	add, done, wait := f.WGOps[0], f.WGOps[1], f.WGOps[2]
	if add.Kind != conc.WGAdd || add.InSpawn != nil {
		t.Errorf("Add op misclassified: %+v", add)
	}
	if done.Kind != conc.WGDone || done.InSpawn == nil || !done.Deferred {
		t.Errorf("Done op must be attributed to the spawned literal and marked deferred: %+v", done)
	}
	if wait.Kind != conc.WGWait || wait.InSpawn != nil {
		t.Errorf("Wait op misclassified: %+v", wait)
	}
	if add.Key != done.Key || done.Key != wait.Key {
		t.Errorf("one group, three keys: %q %q %q", add.Key, done.Key, wait.Key)
	}
	idx := m.WG(add.Key)
	if len(idx.Adds) != 1 || len(idx.Dones) != 1 || len(idx.Waits) != 1 {
		t.Errorf("module index: got %d/%d/%d adds/dones/waits, want 1/1/1",
			len(idx.Adds), len(idx.Dones), len(idx.Waits))
	}
}

func TestWGReceiverDiscrimination(t *testing.T) {
	m, _ := load(t, `package p

type ledger struct{ n int }

func (l *ledger) Add(v int) { l.n += v }
func (l *ledger) Done()     { l.n-- }
func (l *ledger) Wait()     {}

func F() {
	var l ledger
	l.Add(1)
	l.Done()
	l.Wait()
}
`)
	f := fn(t, m, "F")
	if len(f.WGOps) != 0 {
		t.Errorf("Add/Done/Wait on a non-WaitGroup receiver must not be collected: %+v", f.WGOps)
	}
}

func TestWGEscaped(t *testing.T) {
	m, _ := load(t, `package p

import "sync"

func use(w *sync.WaitGroup) { w.Done() }

func F() {
	var wg sync.WaitGroup
	wg.Add(1)
	use(&wg)
	wg.Wait()
}
`)
	f := fn(t, m, "F")
	if len(f.WGOps) == 0 {
		t.Fatal("no WaitGroup ops collected")
	}
	if !m.WGEscaped(f.WGOps[0].Key) {
		t.Errorf("&wg must mark the group escaped (key %q)", f.WGOps[0].Key)
	}
}

func TestChanOpsInSelect(t *testing.T) {
	m, _ := load(t, `package p

func F(a chan int, b chan int) {
	select {
	case a <- 1:
	case v := <-b:
		_ = v
	}
}
`)
	f := fn(t, m, "F")
	var sends, recvs int
	for _, op := range f.ChanOps {
		switch op.Kind {
		case conc.ChanSend:
			sends++
			if op.Expr != "a" {
				t.Errorf("send collected on %q, want a", op.Expr)
			}
		case conc.ChanRecv:
			recvs++
			if op.Expr != "b" {
				t.Errorf("recv collected on %q, want b", op.Expr)
			}
		}
	}
	if sends != 1 || recvs != 1 {
		t.Errorf("select comm clauses: got %d sends, %d recvs, want 1 and 1", sends, recvs)
	}
}

func TestKeyCanonicalizationAliases(t *testing.T) {
	m, _ := load(t, `package p

func F() {
	ch := make(chan int)
	dup := ch
	close(dup)
}
`)
	f := fn(t, m, "F")
	var mk, cl *conc.ChanOp
	for _, op := range f.ChanOps {
		switch op.Kind {
		case conc.ChanMake:
			mk = op
		case conc.ChanClose:
			cl = op
		}
	}
	if mk == nil || cl == nil {
		t.Fatalf("missing make or close op: %+v", f.ChanOps)
	}
	if mk.Key != cl.Key {
		t.Errorf("close through the alias must resolve to the make's key: %q vs %q", mk.Key, cl.Key)
	}
}

func TestKeyFieldChannels(t *testing.T) {
	m, _ := load(t, `package p

type S struct{ c chan int }

func New() *S { return &S{c: make(chan int)} }

func (s *S) Send() { s.c <- 1 }
`)
	mk := fn(t, m, "New").ChanOps
	snd := fn(t, m, "Send").ChanOps
	if len(mk) != 1 || len(snd) != 1 {
		t.Fatalf("ops: New=%+v Send=%+v", mk, snd)
	}
	const want = "f|p.S.c"
	if mk[0].Key != want || snd[0].Key != want {
		t.Errorf("composite-literal make and method send must share the field key %q: %q vs %q",
			want, mk[0].Key, snd[0].Key)
	}
}

func TestCanReturnFixpoint(t *testing.T) {
	m, _ := load(t, `package p

func spin() {
	for {
	}
}

func wraps() { spin() }

func bails() { panic("x") }

func fine() {}
`)
	for _, tc := range []struct {
		name              string
		canReturn, intrin bool
	}{
		{"spin", false, false},
		{"wraps", false, true}, // falls off its own end, but spin never returns
		{"bails", true, true},  // panic terminates the goroutine; not a leak
		{"fine", true, true},
	} {
		f := fn(t, m, tc.name)
		if got := f.CanReturn(); got != tc.canReturn {
			t.Errorf("%s.CanReturn() = %v, want %v", tc.name, got, tc.canReturn)
		}
		if got := f.IntrinsicReturn(); got != tc.intrin {
			t.Errorf("%s.IntrinsicReturn() = %v, want %v", tc.name, got, tc.intrin)
		}
	}
}

func TestIsQuitChan(t *testing.T) {
	empty := types.NewChan(types.SendRecv, types.NewStruct(nil, nil))
	if !conc.IsQuitChan(empty) {
		t.Error("chan struct{} is a quit channel")
	}
	ints := types.NewChan(types.SendRecv, types.Typ[types.Int])
	if conc.IsQuitChan(ints) {
		t.Error("chan int is not a quit channel")
	}
	if conc.IsQuitChan(nil) {
		t.Error("nil type is not a quit channel")
	}
}
