// Package conc models the module's concurrency protocol — the layer
// the goroutine-lifetime (goleak), channel-ownership (chanown) and
// WaitGroup-balance (wgsync) analyzers share. It is built over the
// same three substrates as the rest of the suite: the cfg package for
// path questions, the value-flow layer (vflow) for canonicalizing the
// variables that name channels and WaitGroups, and the CHA call graph
// for following a spawn into its callees.
//
// For every declared function the layer records:
//
//   - Spawn sites: each go statement, with the spawned function
//     literal or the statically-resolved declared callee. Spawns
//     through function-typed values resolve to nothing and consumers
//     treat them as open (the same soundness stance callgraph takes
//     for unknown call sites).
//   - WaitGroup counter ops: every Add/Done/Wait on a sync.WaitGroup
//     receiver, keyed by the canonical variable or field naming the
//     group, annotated with whether the op is deferred and whether it
//     runs inside a spawned goroutine.
//   - Channel ops: every make/send/close/receive, keyed the same way,
//     so ownership ("who sends, who closes") is a module-wide question
//     answered by index lookup.
//
// Keys canonicalize through vflow single-definition chains — `q := ch`
// names the same channel as ch — and fields key on their declaring
// type, so `s.queue` in one method and `srv.queue` in another meet.
//
// The layer also answers the termination question goleak is built on:
// CanReturn reports whether a function has any control-flow path to a
// return (a reachable cfg block with no successors). The analysis is
// interprocedural by truncation: a path through a call to a function
// that itself can never return ends there, and the module-wide
// fixpoint iterates until the can-return sets stabilize. A function
// that panics or os.Exits terminates for this purpose — goleak cares
// about goroutines that block or spin forever, not about how they die.
//
// Like callgraph and vflow, the module build is memoized under
// ModulePass.Cache so the three analyzers of one lint invocation share
// a single pass over the sources.
package conc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/cfg"
	"hetpnoc/internal/analysis/vflow"
)

// WGOpKind classifies a WaitGroup counter operation.
type WGOpKind uint8

const (
	// WGAdd is wg.Add(n).
	WGAdd WGOpKind = iota
	// WGDone is wg.Done().
	WGDone
	// WGWait is wg.Wait().
	WGWait
)

// WGOp is one WaitGroup counter operation in a function body.
type WGOp struct {
	Kind WGOpKind

	// Key is the canonical name of the WaitGroup (see Key).
	Key string

	// Expr is the receiver as written, for diagnostics.
	Expr string

	// Call is the operation's call expression.
	Call *ast.CallExpr

	// Deferred reports the op runs from a defer (directly or inside a
	// deferred function literal).
	Deferred bool

	// InSpawn is the go statement whose spawned literal lexically
	// contains the op, nil when the op runs on the spawning side.
	InSpawn *ast.GoStmt
}

// ChanOpKind classifies a channel operation.
type ChanOpKind uint8

const (
	// ChanMake is a make(chan ...) paired with the variable or field it
	// initializes.
	ChanMake ChanOpKind = iota
	// ChanSend is ch <- v.
	ChanSend
	// ChanClose is close(ch).
	ChanClose
	// ChanRecv is <-ch or a range over ch.
	ChanRecv
)

// ChanOp is one channel operation in a function body.
type ChanOp struct {
	Kind ChanOpKind

	// Key is the canonical name of the channel (see Key).
	Key string

	// Expr is the channel expression as written, for diagnostics.
	Expr string

	// Node is the operation site: the make call, send statement, close
	// call or receive expression.
	Node ast.Node

	// Var is the local variable naming the channel when the operation
	// keys on one, nil for fields and compound expressions.
	Var *types.Var

	// InSpawn mirrors WGOp.InSpawn.
	InSpawn *ast.GoStmt
}

// Spawn is one go statement.
type Spawn struct {
	// Stmt is the go statement.
	Stmt *ast.GoStmt

	// Fn is the declared function whose body lexically contains the
	// spawn (spawns inside nested literals attribute here too, the
	// callgraph convention).
	Fn *FuncInfo

	// Lit is the spawned function literal, nil when the target is a
	// declared function or unresolved.
	Lit *ast.FuncLit

	// Callee is the statically-resolved spawned declared function, nil
	// for literals and for spawns through function-typed values.
	Callee *types.Func
}

// FuncInfo is the concurrency summary of one declared function.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Unit *analysis.PackageUnit

	// Spawns, WGOps and ChanOps are in source order and cover the whole
	// body, function literals included.
	Spawns  []*Spawn
	WGOps   []*WGOp
	ChanOps []*ChanOp

	params map[*types.Var]bool

	// canReturn is maintained by the module fixpoint; intrinsicReturn
	// ignores callees (false means the body itself loops forever).
	canReturn       bool
	intrinsicReturn bool
}

// CanReturn reports whether any path through the function reaches a
// return (or a terminating panic/os.Exit), calls to module functions
// that never return included.
func (fi *FuncInfo) CanReturn() bool { return fi.canReturn }

// IntrinsicReturn is CanReturn with every callee assumed to return:
// false means the body's own control flow never reaches an exit.
func (fi *FuncInfo) IntrinsicReturn() bool { return fi.intrinsicReturn }

// IsParam reports whether v is one of the function's parameters.
func (fi *FuncInfo) IsParam(v *types.Var) bool { return fi.params[v] }

// Owner identifies who a site acts for: the receiver's named type for
// methods ("type <pkg>.<T>"), the function itself otherwise
// ("func <pkg>.<name>"). chanown compares send and close owners.
func (fi *FuncInfo) Owner() string {
	if sig, ok := fi.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := baseNamed(sig.Recv().Type()); named != nil {
			return "type " + named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
	}
	pkg := ""
	if fi.Obj.Pkg() != nil {
		pkg = fi.Obj.Pkg().Name() + "."
	}
	return "func " + pkg + fi.Obj.Name()
}

// Name renders the function for diagnostics ("pkg.Type.Method").
func (fi *FuncInfo) Name() string {
	name := fi.Obj.Name()
	if sig, ok := fi.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := baseNamed(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fi.Obj.Pkg() != nil {
		name = fi.Obj.Pkg().Name() + "." + name
	}
	return name
}

// WGSite and ChanSite pair a module-wide indexed op with its function.
type WGSite struct {
	Fn *FuncInfo
	Op *WGOp
}

// ChanSite pairs an indexed channel op with its function.
type ChanSite struct {
	Fn *FuncInfo
	Op *ChanOp
}

// WGIndex is every counter op of one WaitGroup key across the module.
type WGIndex struct {
	Adds, Dones, Waits []WGSite
}

// ChanIndex is every op of one channel key across the module.
type ChanIndex struct {
	Makes, Sends, Closes, Recvs []ChanSite
}

// Module is the whole-program concurrency summary.
type Module struct {
	fset *token.FileSet
	vf   *vflow.Module

	fns map[*types.Func]*FuncInfo

	// Sorted holds every summarized function in deterministic build
	// order (unit, file, source); traversals that must be reproducible
	// iterate it.
	Sorted []*FuncInfo

	wg        map[string]*WGIndex
	chans     map[string]*ChanIndex
	wgKeys    []string
	chKeys    []string
	escapedWG map[string]bool
	litRets   map[*ast.FuncLit]bool
}

// WGEscaped reports whether the WaitGroup key was address-taken
// anywhere in the module (&wg handed to another function): its counter
// ops may happen under keys the layer cannot match, so balance checks
// must stay quiet about it.
func (m *Module) WGEscaped(key string) bool { return m.escapedWG[key] }

// FromPass returns the module's concurrency summary, memoized in
// mp.Cache so goleak, chanown and wgsync share one build.
func FromPass(mp *analysis.ModulePass) *Module {
	const key = "conc"
	if m, ok := mp.Cache[key].(*Module); ok {
		return m
	}
	m := Build(mp.Fset, mp.Pkgs, vflow.FromPass(mp))
	if mp.Cache != nil {
		mp.Cache[key] = m
	}
	return m
}

// Build summarizes every declared function of units and runs the
// can-return fixpoint. Units must share one FileSet and type universe.
func Build(fset *token.FileSet, units []*analysis.PackageUnit, vf *vflow.Module) *Module {
	m := &Module{
		fset:      fset,
		vf:        vf,
		fns:       make(map[*types.Func]*FuncInfo),
		wg:        make(map[string]*WGIndex),
		chans:     make(map[string]*ChanIndex),
		escapedWG: make(map[string]bool),
		litRets:   make(map[*ast.FuncLit]bool),
	}
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, dup := m.fns[obj]; dup {
					continue
				}
				fi := m.collect(obj, fd, u)
				m.fns[obj] = fi
				m.Sorted = append(m.Sorted, fi)
			}
		}
	}
	m.index()
	m.computeReturns()
	return m
}

// FuncOf returns the summary of the declared function obj, or nil when
// obj is not declared in the module.
func (m *Module) FuncOf(obj *types.Func) *FuncInfo { return m.fns[obj] }

// WG returns the module-wide counter ops of a WaitGroup key (the zero
// index when the key is unknown).
func (m *Module) WG(key string) WGIndex {
	if idx := m.wg[key]; idx != nil {
		return *idx
	}
	return WGIndex{}
}

// Chan returns the module-wide ops of a channel key.
func (m *Module) Chan(key string) ChanIndex {
	if idx := m.chans[key]; idx != nil {
		return *idx
	}
	return ChanIndex{}
}

// WGKeys returns every indexed WaitGroup key in sorted order.
func (m *Module) WGKeys() []string { return m.wgKeys }

// ChanKeys returns every indexed channel key in sorted order.
func (m *Module) ChanKeys() []string { return m.chKeys }

// index builds the module-wide WaitGroup and channel indexes. Sites
// append in Sorted order, so per-key lists are deterministic.
func (m *Module) index() {
	for _, fi := range m.Sorted {
		for _, op := range fi.WGOps {
			idx := m.wg[op.Key]
			if idx == nil {
				idx = &WGIndex{}
				m.wg[op.Key] = idx
				m.wgKeys = append(m.wgKeys, op.Key)
			}
			site := WGSite{Fn: fi, Op: op}
			switch op.Kind {
			case WGAdd:
				idx.Adds = append(idx.Adds, site)
			case WGDone:
				idx.Dones = append(idx.Dones, site)
			case WGWait:
				idx.Waits = append(idx.Waits, site)
			}
		}
		for _, op := range fi.ChanOps {
			idx := m.chans[op.Key]
			if idx == nil {
				idx = &ChanIndex{}
				m.chans[op.Key] = idx
				m.chKeys = append(m.chKeys, op.Key)
			}
			site := ChanSite{Fn: fi, Op: op}
			switch op.Kind {
			case ChanMake:
				idx.Makes = append(idx.Makes, site)
			case ChanSend:
				idx.Sends = append(idx.Sends, site)
			case ChanClose:
				idx.Closes = append(idx.Closes, site)
			case ChanRecv:
				idx.Recvs = append(idx.Recvs, site)
			}
		}
	}
	sort.Strings(m.wgKeys)
	sort.Strings(m.chKeys)
}

// collect builds one function's summary with a single AST walk plus a
// position-range pass attributing ops to spawned literals and defers.
func (m *Module) collect(obj *types.Func, fd *ast.FuncDecl, u *analysis.PackageUnit) *FuncInfo {
	fi := &FuncInfo{Obj: obj, Decl: fd, Unit: u, params: make(map[*types.Var]bool)}
	info := u.TypesInfo
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					fi.params[v] = true
				}
			}
		}
	}

	k := m.NewKeyer(fd.Body, u)

	// Spawned-literal and defer extents, for op attribution.
	type extent struct {
		pos, end token.Pos
		spawn    *ast.GoStmt
	}
	var spawnExts, deferExts []extent

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			sp := &Spawn{Stmt: n, Fn: fi}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				sp.Lit = lit
				spawnExts = append(spawnExts, extent{pos: lit.Body.Pos(), end: lit.Body.End(), spawn: n})
			} else {
				sp.Callee = staticCallee(info, n.Call)
			}
			fi.Spawns = append(fi.Spawns, sp)
		case *ast.DeferStmt:
			deferExts = append(deferExts, extent{pos: n.Call.Pos(), end: n.Call.End()})
		case *ast.CallExpr:
			if kind, ok := wgMethod(info, n); ok {
				if sel, selOK := unparen(n.Fun).(*ast.SelectorExpr); selOK {
					fi.WGOps = append(fi.WGOps, &WGOp{
						Kind: kind,
						Key:  k.Key(sel.X),
						Expr: types.ExprString(sel.X),
						Call: n,
					})
				}
			} else if isBuiltinClose(info, n) && len(n.Args) == 1 {
				fi.ChanOps = append(fi.ChanOps, k.chanOp(ChanClose, n.Args[0], n))
			}
		case *ast.SendStmt:
			fi.ChanOps = append(fi.ChanOps, k.chanOp(ChanSend, n.Chan, n))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.ChanOps = append(fi.ChanOps, k.chanOp(ChanRecv, n.X, n))
			} else if n.Op == token.AND && isWaitGroup(info.TypeOf(n.X)) {
				m.escapedWG[k.Key(n.X)] = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				fi.ChanOps = append(fi.ChanOps, k.chanOp(ChanRecv, n.X, n.X))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if isMakeChan(info, rhs) {
						fi.ChanOps = append(fi.ChanOps, k.chanOp(ChanMake, n.Lhs[i], rhs))
					}
				}
			}
		case *ast.CompositeLit:
			named := baseNamed(info.TypeOf(n))
			if named == nil {
				return true
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok || !isMakeChan(info, kv.Value) {
					continue
				}
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				fi.ChanOps = append(fi.ChanOps, &ChanOp{
					Kind: ChanMake,
					Key:  fieldKey(named, id.Name),
					Expr: named.Obj().Name() + "." + id.Name,
					Node: kv.Value,
				})
			}
		}
		return true
	})

	// Innermost spawned-literal extent containing an op's position.
	inSpawn := func(pos token.Pos) *ast.GoStmt {
		var best *extent
		for i := range spawnExts {
			e := &spawnExts[i]
			if e.pos <= pos && pos < e.end && (best == nil || e.pos > best.pos) {
				best = e
			}
		}
		if best == nil {
			return nil
		}
		return best.spawn
	}
	inDefer := func(pos token.Pos) bool {
		for _, e := range deferExts {
			if e.pos <= pos && pos < e.end {
				return true
			}
		}
		return false
	}
	for _, op := range fi.WGOps {
		op.InSpawn = inSpawn(op.Call.Pos())
		op.Deferred = inDefer(op.Call.Pos())
	}
	for _, op := range fi.ChanOps {
		op.InSpawn = inSpawn(op.Node.Pos())
	}
	return fi
}

// Keyer canonicalizes the expressions naming channels and WaitGroups
// within one function body. chanown's path-sensitive pass keys its
// facts through one so they line up with the module indexes.
type Keyer struct {
	m    *Module
	info *types.Info
	fi   *vflow.FuncInfo
}

// NewKeyer returns a Keyer over body (a declared function's or a
// function literal's).
func (m *Module) NewKeyer(body *ast.BlockStmt, u *analysis.PackageUnit) *Keyer {
	return &Keyer{m: m, info: u.TypesInfo, fi: m.vf.FuncInfo(body, u.TypesInfo)}
}

// Graph returns body's control-flow graph, shared with the value-flow
// layer's memoized build.
func (m *Module) Graph(body *ast.BlockStmt, u *analysis.PackageUnit) *cfg.Graph {
	return m.vf.FuncInfo(body, u.TypesInfo).Graph
}

func (k *Keyer) chanOp(kind ChanOpKind, ch ast.Expr, site ast.Node) *ChanOp {
	op := &ChanOp{Kind: kind, Key: k.Key(ch), Expr: types.ExprString(unparen(ch)), Node: site}
	if id, ok := unparen(ch).(*ast.Ident); ok {
		op.Var = k.Canonical(id)
	}
	return op
}

// Key canonicalizes an expression naming a channel or WaitGroup:
//
//	"l|<pos>"            local variable, through vflow single-def chains
//	"f|<pkg>.<T>.<field>" struct field, keyed on the declaring type
//	"g|<pkg>.<name>"      package-level variable
//	"e|<printed>"         anything else, keyed on its printed form
func (k *Keyer) Key(e ast.Expr) string {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v := k.Canonical(e); v != nil {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "g|" + v.Pkg().Path() + "." + v.Name()
			}
			return fmt.Sprintf("l|%d", v.Pos())
		}
	case *ast.SelectorExpr:
		if sel, ok := k.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := baseNamed(k.info.TypeOf(e.X)); named != nil {
				return fieldKey(named, e.Sel.Name)
			}
		}
		if v, ok := k.info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "g|" + v.Pkg().Path() + "." + v.Name()
		}
	}
	return "e|" + types.ExprString(e)
}

// Canonical follows single-definition ident chains to the variable the
// identifier ultimately names (`q := ch` keys as ch). Idents inside
// function literals have no vflow record and resolve to their variable
// directly — captured channels key the same inside and outside.
func (k *Keyer) Canonical(id *ast.Ident) *types.Var {
	v, ok := k.info.Uses[id].(*types.Var)
	if !ok {
		if dv, ok := k.info.Defs[id].(*types.Var); ok {
			return dv
		}
		return nil
	}
	for depth := 0; depth < 8; depth++ {
		defs := k.fi.DefsOf(id)
		if len(defs) != 1 || defs[0].RHS == nil {
			return v
		}
		rid, ok := unparen(defs[0].RHS).(*ast.Ident)
		if !ok {
			return v
		}
		rv, ok := k.info.Uses[rid].(*types.Var)
		if !ok {
			return v
		}
		v, id = rv, rid
	}
	return v
}

func fieldKey(named *types.Named, field string) string {
	path := ""
	if named.Obj().Pkg() != nil {
		path = named.Obj().Pkg().Path() + "."
	}
	return "f|" + path + named.Obj().Name() + "." + field
}

// computeReturns runs the module-wide can-return fixpoint: start from
// "everything returns", recompute each function with paths truncated
// at calls to non-returning functions, and iterate until stable. The
// set only ever shrinks, so the loop terminates.
func (m *Module) computeReturns() {
	for _, fi := range m.Sorted {
		fi.intrinsicReturn = m.bodyCanReturn(fi.Decl.Body, fi.Unit, false)
		fi.canReturn = fi.intrinsicReturn
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range m.Sorted {
			if !fi.canReturn {
				continue
			}
			if !m.bodyCanReturn(fi.Decl.Body, fi.Unit, true) {
				fi.canReturn = false
				changed = true
			}
		}
	}
}

// LitCanReturn reports whether the function literal's body has a path
// to an exit, module callees considered. goleak asks this of spawned
// literals.
func (m *Module) LitCanReturn(lit *ast.FuncLit, u *analysis.PackageUnit) bool {
	if r, ok := m.litRets[lit]; ok {
		return r
	}
	r := m.bodyCanReturn(lit.Body, u, true)
	m.litRets[lit] = r
	return r
}

// bodyCanReturn reports whether some path from the body's entry
// reaches a cfg block with no successors — a return, a terminal
// panic/os.Exit, or falling off the end. With useCallees, a path ends
// (non-terminating) at the first lexical call to a module function
// whose own CanReturn is false.
func (m *Module) bodyCanReturn(body *ast.BlockStmt, u *analysis.PackageUnit, useCallees bool) bool {
	g := m.vf.FuncInfo(body, u.TypesInfo).Graph
	if len(g.Blocks) == 0 {
		return true
	}
	seen := make(map[int]bool)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		blk := g.Blocks[queue[0]]
		queue = queue[1:]
		truncated := false
		if useCallees {
			for _, n := range blk.Nodes {
				if m.nodeCallsNonReturning(n, u.TypesInfo) {
					truncated = true
					break
				}
			}
		}
		if truncated {
			continue
		}
		if len(blk.Succs) == 0 {
			return true
		}
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				queue = append(queue, s.Index)
			}
		}
	}
	return false
}

// nodeCallsNonReturning reports whether n lexically contains (outside
// nested function literals) a static call to a module function that
// can never return. go statements don't count — the spawned callee
// blocks its own goroutine, not this path.
func (m *Module) nodeCallsNonReturning(n ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch nd := nd.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if obj := staticCallee(info, nd); obj != nil {
				if fi := m.fns[obj]; fi != nil && !fi.canReturn {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// StaticCalleesIn returns the module functions body lexically calls
// outside nested function literals, in source order without
// duplicates. goleak walks spawn chains through it.
func (m *Module) StaticCalleesIn(body ast.Node, info *types.Info) []*FuncInfo {
	var out []*FuncInfo
	seen := make(map[*FuncInfo]bool)
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if obj := staticCallee(info, nd); obj != nil {
				if fi := m.fns[obj]; fi != nil && !seen[fi] {
					seen[fi] = true
					out = append(out, fi)
				}
			}
		}
		return true
	})
	return out
}

// staticCallee resolves a call to the declared function it statically
// names: pkg.F(...), f(...), or a method call on a concrete receiver.
// Interface calls and calls through function values resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				return nil
			}
			return obj
		}
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// wgMethod classifies a call as a sync.WaitGroup counter op. The
// receiver type check keeps atomic counters, testing.F.Add, time.Add
// and the energy ledger's Add out of the vocabulary.
func wgMethod(info *types.Info, call *ast.CallExpr) (WGOpKind, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	if !isWaitGroup(sig.Recv().Type()) {
		return 0, false
	}
	switch obj.Name() {
	case "Add":
		return WGAdd, true
	case "Done":
		return WGDone, true
	case "Wait":
		return WGWait, true
	}
	return 0, false
}

func isWaitGroup(t types.Type) bool {
	named := baseNamed(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

func isMakeChan(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	return isChanType(info.TypeOf(call))
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// IsQuitChan reports whether t is a channel of empty structs — the
// quit/done-channel convention (context.Done() returns one). goleak
// accepts a receive from one as an exit signal.
func IsQuitChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func baseNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
