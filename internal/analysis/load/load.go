// Package load type-checks the module's packages for the hetpnoclint
// analyzers. It is the moral equivalent of go/packages.Load in the
// LoadAllSyntax mode, built from the standard library only: package
// enumeration comes from `go list -json`, parsing from go/parser, and
// type checking from go/types with stdlib imports resolved from source
// via go/importer (the compiled-export-data path is unavailable because
// the toolchain no longer ships .a files for the standard library).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path. External test packages carry the go
	// convention "_test" suffix.
	Path string

	// Dir is the package's source directory.
	Dir string

	// Files are the parsed sources. For the in-package unit this is
	// GoFiles plus TestGoFiles, so analyzers see test code too.
	Files []*ast.File

	// Pkg and Info are the go/types results.
	Pkg  *types.Package
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Loader loads and type-checks module packages. The zero value loads
// from the current directory's module.
type Loader struct {
	// Dir is a directory inside the target module ("" = cwd).
	Dir string

	// Tests includes _test.go files in each package's unit and loads
	// external _test packages. hetpnoclint sets this: determinism bugs
	// in golden tests are as fatal as in the fabric itself.
	Tests bool

	fset    *token.FileSet
	std     types.ImporterFrom // source-based stdlib importer
	listed  map[string]*listPkg
	checked map[string]*Package
	loading map[string]bool // cycle detection
	module  string          // module path prefix
}

// Load lists patterns (e.g. "./..."), type-checks every matched package
// plus its module-internal dependencies, and returns the matched
// packages in listing order. The returned FileSet resolves every
// position in the returned packages.
func (l *Loader) Load(patterns ...string) (*token.FileSet, []*Package, error) {
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	l.listed = make(map[string]*listPkg)
	l.checked = make(map[string]*Package)
	l.loading = make(map[string]bool)

	mod, err := l.goList("list", "-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, nil, fmt.Errorf("load: resolving module: %w", err)
	}
	l.module = strings.TrimSpace(string(mod))

	roots, err := l.list(patterns)
	if err != nil {
		return nil, nil, err
	}

	var pkgs []*Package
	for _, lp := range roots {
		p, err := l.check(lp.ImportPath)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
		if l.Tests && len(lp.XTestGoFiles) > 0 {
			xp, err := l.checkXTest(lp)
			if err != nil {
				return nil, nil, err
			}
			pkgs = append(pkgs, xp)
		}
	}
	return l.fset, pkgs, nil
}

// goList runs the go tool in the module directory and returns stdout.
func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// list runs `go list -json` over patterns and indexes the results.
func (l *Loader) list(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &lp)
		l.listed[lp.ImportPath] = &lp
	}
	return pkgs, nil
}

// lookup returns the go list record for path, listing it on demand when
// the original patterns did not cover it.
func (l *Loader) lookup(path string) (*listPkg, error) {
	if lp, ok := l.listed[path]; ok {
		return lp, nil
	}
	lps, err := l.list([]string{path})
	if err != nil {
		return nil, err
	}
	return lps[0], nil
}

// check type-checks the in-package unit of path (GoFiles, plus
// TestGoFiles when Tests is set) and caches the result.
func (l *Loader) check(path string) (*Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s (a _test.go file imports a package that imports its own package)", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	lp, err := l.lookup(path)
	if err != nil {
		return nil, err
	}
	names := lp.GoFiles
	if l.Tests {
		names = append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
	}
	p, err := l.checkFiles(path, lp.Dir, lp.Name, names)
	if err != nil {
		return nil, err
	}
	l.checked[path] = p
	return p, nil
}

// checkXTest type-checks lp's external test package. Its self-import
// resolves to the already-checked in-package unit.
func (l *Loader) checkXTest(lp *listPkg) (*Package, error) {
	return l.checkFiles(lp.ImportPath+"_test", lp.Dir, lp.Name+"_test", lp.XTestGoFiles)
}

func (l *Loader) checkFiles(path, dir, name string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: tp, Info: info}, nil
}

// loaderImporter resolves imports during type checking: module-internal
// paths recurse into the loader, everything else falls through to the
// source-based stdlib importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}
