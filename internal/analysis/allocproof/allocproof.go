// Package allocproof upgrades hot-path allocation enforcement from
// heuristic to compiler evidence. Where hotpathalloc pattern-matches
// syntax that usually allocates, this analyzer consumes the compiler's
// own escape-analysis and bounds-check diagnostics (internal/analysis/
// gcobs) and reports, for every function reachable from a
// //hetpnoc:hotpath root:
//
//   - a value the compiler proved escapes to the heap — a real heap
//     allocation in hot code, however innocent the syntax looks;
//   - a bounds check the BCE pass failed to eliminate inside an
//     occupancy-word scan loop (a loop iterating set bits with
//     math/bits.TrailingZeros64) — the innermost kernels of the cycle
//     loop, where a redundant check is pure per-flit overhead.
//
// Deliberate cold exits are the same ones hotpathreach honors: a
// //hetpnoc:coldcall directive severs the function (doc comment) or the
// call (call site) from the reachable set, and escape facts on a
// coldcall-covered line are skipped. Escapes inside the arguments of
// panic or fmt.Errorf calls are skipped too: invariant-violation paths
// construct their message exactly once, on the way out.
//
// When the compiler proves an escape on a line the heuristic analyzer
// did not flag, the diagnostic says so — each such disagreement is a
// candidate new hotpathalloc rule.
package allocproof

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
	"hetpnoc/internal/analysis/gcobs"
	"hetpnoc/internal/analysis/hotpathalloc"
	"hetpnoc/internal/analysis/hotpathreach"
)

// Analyzer is the allocproof check.
var Analyzer = &analysis.Analyzer{
	Name: "allocproof",
	Doc: "report compiler-proven heap escapes and residual bounds checks in hot-path-reachable functions\n\n" +
		"Builds the module with -gcflags='-m=2 -d=ssa/check_bce', keys the\n" +
		"escape and BCE diagnostics by position, and flags every fact that\n" +
		"lands in a function reachable from a //hetpnoc:hotpath root:\n" +
		"heap escapes anywhere, bounds checks inside occupancy-word scan\n" +
		"loops. Sever deliberate cold paths with //hetpnoc:coldcall <why>.",
	RunModule: run,
}

// Cache keys the driver may seed. DirKey tells the analyzer where to run
// the evidence build ("" = current directory's module); ReportKey hands
// it an already-collected *gcobs.Report (the driver collects once so it
// can also write the CI artifact).
const (
	DirKey    = "gcobs.dir"
	ReportKey = "gcobs.report"
)

func run(mp *analysis.ModulePass) error {
	report, err := reportFor(mp)
	if err != nil {
		return err
	}
	reach := hotpathreach.FromPass(mp)
	g := reach.Graph
	dirs := analysis.NewDirectiveCache(mp.Fset)

	// Index the facts by file, sorted by position for deterministic
	// reporting.
	byFile := make(map[string][]gcobs.Fact)
	for _, f := range report.Facts {
		byFile[f.File] = append(byFile[f.File], f)
	}
	for _, facts := range byFile {
		sort.Slice(facts, func(i, j int) bool {
			if facts[i].Line != facts[j].Line {
				return facts[i].Line < facts[j].Line
			}
			return facts[i].Col < facts[j].Col
		})
	}

	for _, n := range g.Sorted {
		if !reach.Reached(n) {
			continue
		}
		file := mp.Fset.File(n.Decl.Pos())
		if file == nil {
			continue
		}
		facts := byFile[file.Name()]
		if len(facts) == 0 {
			continue
		}
		start := file.Line(n.Decl.Pos())
		end := file.Line(n.Decl.End())

		fn := &hotFunc{mp: mp, n: n, file: file, dirs: dirs}
		chain := reach.ChainOf(n)
		for _, fact := range facts {
			if fact.Line < start || fact.Line > end {
				continue
			}
			switch fact.Kind {
			case gcobs.KindEscape, gcobs.KindMoved:
				fn.checkEscape(fact, chain)
			case gcobs.KindBoundsCheck:
				fn.checkBounds(fact, chain)
			}
		}
	}
	return nil
}

// reportFor returns the driver-provided gcobs report, or collects one
// for the module directory named in the cache.
func reportFor(mp *analysis.ModulePass) (*gcobs.Report, error) {
	if r, ok := mp.Cache[ReportKey].(*gcobs.Report); ok {
		return r, nil
	}
	dir, _ := mp.Cache[DirKey].(string)
	r, err := gcobs.Collect(dir)
	if err != nil {
		return nil, err
	}
	if mp.Cache != nil {
		mp.Cache[ReportKey] = r
	}
	return r, nil
}

// hotFunc carries the lazily-computed per-function context: cold
// argument ranges, occupancy-loop ranges and the set of lines the
// heuristic analyzer flags.
type hotFunc struct {
	mp   *analysis.ModulePass
	n    *callgraph.Node
	file *token.File
	dirs *analysis.DirectiveCache

	built          bool
	coldRanges     []posRange // panic(...) / fmt.Errorf(...) argument spans
	scanLoops      []posRange // occupancy word-scan loop bodies
	heuristicLines map[int]bool
}

type posRange struct{ pos, end token.Pos }

func (h *hotFunc) build() {
	if h.built {
		return
	}
	h.built = true
	info := h.n.Unit.TypesInfo

	ast.Inspect(h.n.Decl, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			if isColdCtor(info, nd) && len(nd.Args) > 0 {
				h.coldRanges = append(h.coldRanges, posRange{nd.Args[0].Pos(), nd.End()})
			}
		case *ast.ForStmt:
			if containsTrailingZeros(info, nd) {
				h.scanLoops = append(h.scanLoops, posRange{nd.Pos(), nd.End()})
			}
		case *ast.RangeStmt:
			if containsTrailingZeros(info, nd) {
				h.scanLoops = append(h.scanLoops, posRange{nd.Pos(), nd.End()})
			}
		}
		return true
	})

	// The heuristic analyzer's view of the same body, for disagreement
	// flagging: run hotpathalloc.Check with an intercepted reporter.
	h.heuristicLines = make(map[int]bool)
	pass := h.mp.PassFor(h.n.Unit)
	pass.Report = func(d analysis.Diagnostic) {
		if f := h.mp.Fset.File(d.Pos); f == h.file {
			h.heuristicLines[f.Line(d.Pos)] = true
		}
	}
	hotpathalloc.Check(pass, h.n.Decl)
}

// checkEscape reports a compiler-proven heap allocation, unless the line
// is a declared or structural cold path.
func (h *hotFunc) checkEscape(fact gcobs.Fact, chain string) {
	h.build()
	pos := h.posOf(fact)
	if h.coldCovered(fact) {
		return
	}
	for _, r := range h.coldRanges {
		if pos >= r.pos && pos < r.end {
			return
		}
	}
	msg := fmt.Sprintf("compiler-proven heap allocation on the hot path: %s (hot path: %s)", fact.Text, chain)
	if !h.heuristicLines[fact.Line] {
		msg += " [hotpathalloc heuristics missed this]"
	}
	h.mp.Reportf(pos, msg,
		"restructure to reuse a preallocated buffer, or sever a deliberate slow path with //hetpnoc:coldcall <why>")
}

// checkBounds reports a residual bounds check inside an occupancy
// word-scan loop.
func (h *hotFunc) checkBounds(fact gcobs.Fact, chain string) {
	h.build()
	pos := h.posOf(fact)
	if h.coldCovered(fact) {
		return
	}
	inLoop := false
	for _, r := range h.scanLoops {
		if pos >= r.pos && pos < r.end {
			inLoop = true
			break
		}
	}
	if !inLoop {
		return
	}
	h.mp.Reportf(pos,
		fmt.Sprintf("bounds check not eliminated inside an occupancy word-scan loop (hot path: %s)", chain),
		"hoist the slice into a local, assert the length before the loop, or mask the index so BCE can prove it in range")
}

// coldCovered reports whether the fact's line carries (or sits under) a
// //hetpnoc:coldcall directive — the statement is a declared slow path,
// so its operands escaping is the justified cost of taking it.
func (h *hotFunc) coldCovered(fact gcobs.Fact) bool {
	d := h.dirs.For(h.n.Unit, h.posOf(fact))
	if d == nil {
		return false
	}
	_, ok := d.CoveringLine(fact.Line, analysis.DirectiveColdcall)
	return ok
}

// posOf converts a fact's file/line/col to a token.Pos inside the
// function's file.
func (h *hotFunc) posOf(fact gcobs.Fact) token.Pos {
	line := fact.Line
	if line < 1 {
		line = 1
	}
	if line > h.file.LineCount() {
		line = h.file.LineCount()
	}
	pos := h.file.LineStart(line)
	// Advance by col-1 bytes, clamped to the line (LineStart of the next
	// line bounds it).
	if fact.Col > 1 {
		pos += token.Pos(fact.Col - 1)
		if end := h.file.Pos(h.file.Size()); pos > end {
			pos = end
		}
	}
	return pos
}

// isColdCtor reports whether call is panic(...) or fmt.Errorf(...):
// error-construction paths whose operands escape exactly once, on the
// way out of the simulation.
func isColdCtor(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		path := pn.Imported().Path()
		if path == "fmt" && fun.Sel.Name == "Errorf" {
			return true
		}
		if path == "errors" && fun.Sel.Name == "New" {
			return true
		}
	}
	return false
}

// containsTrailingZeros reports whether the loop's text contains a call
// to math/bits.TrailingZeros64 — the signature of an occupancy-word
// scan.
func containsTrailingZeros(info *types.Info, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(nd ast.Node) bool {
		if found {
			return false
		}
		sel, ok := nd.(*ast.SelectorExpr)
		if !ok || !strings.HasPrefix(sel.Sel.Name, "TrailingZeros") {
			return true
		}
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "math/bits" {
			found = true
		}
		return true
	})
	return found
}
