// Package hot exercises allocproof against a canned compiler report:
// escape and bounds facts land on hot-reachable lines and must be
// reported, silenced, or ignored per the cold-path rules.
package hot

import "math/bits"

// Step is the hot root. The bounds fact on the head load below sits
// outside any occupancy scan loop, so it stays silent.
//
//hetpnoc:hotpath
func Step(words []uint64, sink []*int) int {
	head := int(words[0])
	tick(words, sink)
	return head
}

func tick(words []uint64, sink []*int) {
	for _, word := range words {
		for ; word != 0; word &= word - 1 {
			i := bits.TrailingZeros64(word)
			sink[i] = leak(i) // want `bounds check not eliminated inside an occupancy word-scan loop \(hot path: hot\.Step -> hot\.tick\)`
		}
	}
	if len(sink) == 0 {
		panic(newMsg(sink))
	}
	//hetpnoc:coldcall one-shot diagnostic buffer, never steady-state
	grow(sink)
}

func leak(i int) *int {
	v := i
	return &v // want `compiler-proven heap allocation on the hot path: &v escapes to heap \(hot path: hot\.Step -> hot\.tick -> hot\.leak\)`
}

// newMsg builds the panic message; its result escaping inside the
// panic argument span is a declared cold exit.
func newMsg(sink []*int) string {
	_ = sink
	return "empty"
}

// grow is the coldcall-covered diagnostic path.
func grow(sink []*int) {
	_ = sink
}
