package allocproof_test

import (
	"path/filepath"
	"testing"

	"hetpnoc/internal/analysis/allocproof"
	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/gcobs"
)

// TestAllocproof feeds the analyzer a canned compiler report keyed to
// the fixture's line numbers: escapes and bounds checks on hot lines
// must be reported, while panic-argument spans, coldcall-covered lines
// and bounds checks outside occupancy scan loops stay silent.
func TestAllocproof(t *testing.T) {
	testdata := analysistest.TestData()
	file := filepath.Join(testdata, "src", "ap", "hot", "hot.go")
	report := &gcobs.Report{
		Dir:     filepath.Join(testdata, "src", "ap", "hot"),
		GcFlags: "-m=2 -d=ssa/check_bce",
		Facts: []gcobs.Fact{
			// Silent: inside Step but not in a TrailingZeros scan loop.
			{File: file, Line: 13, Col: 15, Kind: gcobs.KindBoundsCheck, KindName: "bounds-check", Text: "Found IsInBounds"},
			// Reported: sink[i] store inside tick's occupancy scan loop.
			{File: file, Line: 22, Col: 4, Kind: gcobs.KindBoundsCheck, KindName: "bounds-check", Text: "Found IsInBounds"},
			// Silent: escape inside panic's argument span.
			{File: file, Line: 26, Col: 9, Kind: gcobs.KindEscape, KindName: "escape", Text: "newMsg(sink) escapes to heap"},
			// Silent: line covered by a //hetpnoc:coldcall directive.
			{File: file, Line: 29, Col: 2, Kind: gcobs.KindEscape, KindName: "escape", Text: "grown buffer escapes to heap"},
			// Reported: compiler-proven escape in hot-reachable leak.
			{File: file, Line: 34, Col: 9, Kind: gcobs.KindEscape, KindName: "escape", Text: "&v escapes to heap"},
		},
	}
	analysistest.RunModuleCache(t, testdata, allocproof.Analyzer,
		map[string]any{allocproof.ReportKey: report},
		"ap/hot",
	)
}
