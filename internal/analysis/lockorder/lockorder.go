// Package lockorder enforces a declared, acyclic lock-acquisition
// order across the module. Deadlocks are the one concurrency bug the
// race detector cannot see: two goroutines acquiring the same two
// mutexes in opposite orders run clean until the interleaving finally
// bites in a soak test. This analyzer makes the order part of the
// reviewed source instead:
//
//   - Every pair of struct-field mutexes ("Server.mu", "Cache.mu" — the
//     //hetpnoc:guardedby vocabulary) that shares a call tree must have
//     a declared order:
//
//	//hetpnoc:lockorder Server.mu Cache.mu cache eviction runs under the server lock
//
//     stating the left lock may be held while the right one is
//     acquired, never the reverse. An undeclared pair is an error at
//     the first function whose transitive acquisition set contains
//     both.
//
//   - Acquisition edges are observed interprocedurally: CFG must-held
//     state (seeded from //hetpnoc:locked contracts) gives the locks
//     held at each Lock call and at each call into a function whose
//     transitive set acquires more. Observed edges and declared edges
//     feed one directed graph; any cycle — two code paths that nest the
//     same locks in opposite orders, or a declaration contradicting
//     observed code — is reported with the acquisition chain of every
//     edge on the cycle.
//
// Scope: only qualified "Type.field" keys participate; local and
// package-level mutexes (test scaffolding, one-off tools) are ignored.
// Deferred calls and function literal bodies are skipped, matching
// lockguard: a literal runs at an unknown time and must take its own
// locks.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
	"hetpnoc/internal/analysis/cfg"
	"hetpnoc/internal/analysis/lockguard"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "require a declared, acyclic acquisition order for every mutex pair sharing a call tree\n\n" +
		"Observed nesting (CFG must-held state, propagated over the call\n" +
		"graph) and //hetpnoc:lockorder declarations feed one directed\n" +
		"graph; undeclared pairs and cycles are errors, cycles reported\n" +
		"with every edge's acquisition chain.",
	RunModule: run,
}

// prov is one piece of evidence for an edge outer→inner: where the
// nesting was observed or declared.
type prov struct {
	desc string
	pos  token.Pos
}

type analyzer struct {
	mp    *analysis.ModulePass
	g     *callgraph.Graph
	trans map[*callgraph.Node]map[string]bool

	// declared maps [outer, inner] to the declaration site.
	declared map[[2]string]token.Pos

	// edges is the combined order graph: edges[outer][inner] = evidence.
	edges map[string]map[string][]prov
}

func run(mp *analysis.ModulePass) error {
	lo := &analyzer{
		mp:       mp,
		g:        callgraph.FromPass(mp),
		declared: make(map[[2]string]token.Pos),
		edges:    make(map[string]map[string][]prov),
	}
	lo.collectDeclared()
	lo.computeTransitive()
	for _, n := range lo.g.Sorted {
		lo.scanFunc(n)
	}
	lo.checkPairs()
	lo.checkCycles()
	return nil
}

// collectDeclared gathers //hetpnoc:lockorder declarations from every
// file and validates their grammar.
func (lo *analyzer) collectDeclared() {
	for _, u := range lo.mp.Pkgs {
		for _, f := range u.Files {
			for _, dir := range analysis.FileDirectives(f) {
				if dir.Name != analysis.DirectiveLockorder {
					continue
				}
				fields := strings.Fields(dir.Arg)
				if len(fields) < 3 {
					lo.mp.Reportf(dir.Pos,
						"//hetpnoc:lockorder needs <outer> <inner> <why>",
						"//hetpnoc:lockorder Outer.mu Inner.mu <why this order is required>")
					continue
				}
				outer, inner := fields[0], fields[1]
				if !dotted(outer) || !dotted(inner) || outer == inner {
					lo.mp.Reportf(dir.Pos,
						"//hetpnoc:lockorder takes two distinct qualified lock names (Type.field)",
						"//hetpnoc:lockorder Outer.mu Inner.mu <why>")
					continue
				}
				lo.declared[[2]string{outer, inner}] = dir.Pos
				lo.addEdge(outer, inner, prov{
					desc: fmt.Sprintf("declared at %s", lo.at(dir.Pos)),
					pos:  dir.Pos,
				})
			}
		}
	}
}

// computeTransitive fills trans: for each function, the qualified lock
// keys its execution may acquire, directly or through static and
// interface call edges (references excluded: taking a function value
// does not run it).
func (lo *analyzer) computeTransitive() {
	lo.trans = make(map[*callgraph.Node]map[string]bool)
	for _, n := range lo.g.Sorted {
		own := make(map[string]bool)
		pass := lo.mp.PassFor(n.Unit)
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, op, ok := lockguard.LockOp(pass, call); ok && (op == "Lock" || op == "RLock") && dotted(key) {
				own[key] = true
			}
			return true
		})
		lo.trans[n] = own
	}
	// Propagate callee sets caller-ward to fixpoint.
	changed := true
	for changed {
		changed = false
		for _, n := range lo.g.Sorted {
			set := lo.trans[n]
			for _, e := range n.Out {
				if e.Kind == callgraph.KindRef {
					continue
				}
				for k := range lo.trans[e.Callee] {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}
}

// scanFunc records observed acquisition edges inside n: must-held facts
// flow through the CFG; holding H at a Lock(K) or at a call whose
// transitive set contains K yields edge H→K.
func (lo *analyzer) scanFunc(n *callgraph.Node) {
	pass := lo.mp.PassFor(n.Unit)
	sites := make(map[ast.Node][]*callgraph.Edge)
	for _, e := range n.Out {
		if e.Kind != callgraph.KindRef {
			sites[e.Site] = append(sites[e.Site], e)
		}
	}
	transfer := func(nd ast.Node, facts cfg.FactSet) {
		lo.walkNode(pass, n, nd, facts, nil)
	}
	g := cfg.New(n.Decl.Body)
	in := g.ForwardMust(lo.entryFacts(pass, n.Decl), transfer)
	for _, b := range g.Blocks {
		facts, reachable := in[b]
		if !reachable {
			continue
		}
		facts = facts.Clone()
		for _, nd := range b.Nodes {
			lo.walkNode(pass, n, nd, facts, sites)
		}
	}
}

// walkNode applies lock ops in stmt to facts; when sites is non-nil it
// also records observed edges (the ForwardMust fixpoint passes nil so
// evidence is collected exactly once). Deferred calls and function
// literals are skipped, matching lockguard's transfer.
func (lo *analyzer) walkNode(pass *analysis.Pass, n *callgraph.Node, stmt ast.Node, facts cfg.FactSet, sites map[ast.Node][]*callgraph.Edge) {
	if _, ok := stmt.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(stmt, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if key, op, ok := lockguard.LockOp(pass, nd); ok {
				switch op {
				case "Lock", "RLock":
					if sites != nil && dotted(key) {
						lo.observe(n, facts, key, nd.Pos())
					}
					facts.Add(key)
				case "Unlock", "RUnlock":
					facts.Remove(key)
				}
				return true
			}
			if sites == nil {
				return true
			}
			seen := make(map[string]bool)
			for _, e := range sites[nd] {
				for _, k := range sortedKeys(lo.trans[e.Callee]) {
					if !seen[k] {
						seen[k] = true
						lo.observe(n, facts, k, nd.Pos())
					}
				}
			}
		}
		return true
	})
}

// observe records edge held→acquired for every qualified lock in facts.
func (lo *analyzer) observe(n *callgraph.Node, facts cfg.FactSet, acquired string, pos token.Pos) {
	for _, h := range facts.Sorted() {
		if h == acquired || !dotted(h) {
			continue
		}
		lo.addEdge(h, acquired, prov{
			desc: fmt.Sprintf("observed in %s at %s", n.Name(), lo.at(pos)),
			pos:  pos,
		})
	}
}

func (lo *analyzer) addEdge(outer, inner string, p prov) {
	m := lo.edges[outer]
	if m == nil {
		m = make(map[string][]prov)
		lo.edges[outer] = m
	}
	m[inner] = append(m[inner], p)
}

// entryFacts seeds held locks from //hetpnoc:locked contracts, the same
// resolution lockguard applies (bare names qualify to the receiver).
func (lo *analyzer) entryFacts(pass *analysis.Pass, fd *ast.FuncDecl) cfg.FactSet {
	entry := cfg.NewFactSet()
	for _, dir := range analysis.FuncDirectives(fd) {
		if dir.Name != analysis.DirectiveLocked || dir.Arg == "" {
			continue
		}
		key := dir.Arg
		if !strings.Contains(key, ".") {
			if recv := receiverTypeName(pass, fd); recv != "" {
				key = recv + "." + key
			}
		}
		entry.Add(key)
	}
	return entry
}

func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkPairs enforces the declaration rule: any function whose
// transitive acquisition set holds two qualified locks is a call tree
// those locks share, so the pair needs a //hetpnoc:lockorder in either
// direction. Each undeclared pair is reported once, at the first such
// function in deterministic order.
func (lo *analyzer) checkPairs() {
	reported := make(map[[2]string]bool)
	for _, n := range lo.g.Sorted {
		keys := sortedKeys(lo.trans[n])
		if len(keys) < 2 {
			continue
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				pair := [2]string{keys[i], keys[j]}
				if reported[pair] {
					continue
				}
				if _, ok := lo.declared[pair]; ok {
					continue
				}
				if _, ok := lo.declared[[2]string{pair[1], pair[0]}]; ok {
					continue
				}
				reported[pair] = true
				lo.mp.Reportf(n.Decl.Name.Pos(),
					fmt.Sprintf("%s reaches acquisitions of both %s and %s with no declared order between them",
						n.Name(), pair[0], pair[1]),
					fmt.Sprintf("declare //hetpnoc:lockorder %s %s <why> (outer first) near the outer lock's type", pair[0], pair[1]))
			}
		}
	}
}

// checkCycles searches the combined declared∪observed graph for cycles
// and reports each once with every edge's evidence.
func (lo *analyzer) checkCycles() {
	var keys []string
	for k := range lo.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	seen := make(map[string]bool)

	report := func(cycle []string) {
		canon := canonical(cycle)
		if seen[canon] {
			return
		}
		seen[canon] = true
		var parts []string
		var first prov
		for i, k := range cycle {
			next := cycle[(i+1)%len(cycle)]
			ev := lo.edges[k][next][0]
			if i == 0 {
				first = ev
			}
			parts = append(parts, fmt.Sprintf("%s -> %s (%s)", k, next, ev.desc))
		}
		lo.mp.Reportf(first.pos,
			"lock-order deadlock: "+strings.Join(parts, "; "),
			"make every path acquire these locks in one declared order, or split the critical sections")
	}

	var dfs func(k string)
	dfs = func(k string) {
		color[k] = gray
		stack = append(stack, k)
		for _, next := range sortedKeys2(lo.edges[k]) {
			switch color[next] {
			case white:
				dfs(next)
			case gray:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == next {
						cycle := append([]string(nil), stack[i:]...)
						report(cycle)
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[k] = black
	}
	for _, k := range keys {
		if color[k] == white {
			dfs(k)
		}
	}
}

// canonical rotates cycle to start at its smallest key, so one cycle
// discovered from different entry points dedupes.
func canonical(cycle []string) string {
	min := 0
	for i, k := range cycle {
		if k < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "|")
}

// at renders pos as "file:line" with the file shortened to its base
// name — stable across checkouts, precise enough to jump to.
func (lo *analyzer) at(pos token.Pos) string {
	p := lo.mp.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func dotted(key string) bool { return strings.Contains(key, ".") }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string][]prov) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
