// Package pair exercises the declaration rule: two locks sharing a
// call tree with no //hetpnoc:lockorder between them.
package pair

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func Both(a *A, b *B) { // want `pair\.Both reaches acquisitions of both A\.mu and B\.mu with no declared order between them`
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// Solo acquires one lock only: no pair, no report.
func Solo(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// local mutexes are out of scope: bare keys never enter the graph.
func Local(a *A) {
	var mu sync.Mutex
	mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	mu.Unlock()
}
