// Package serve exercises lockorder's declared-order and cycle
// checks over a two-mutex pair.
package serve

import "sync"

//hetpnoc:lockorder Server.mu Cache.mu eviction runs under the server lock

type Server struct {
	mu sync.Mutex
	c  Cache
}

type Cache struct {
	mu sync.Mutex
}

// Declared nests in the declared direction: clean.
func (s *Server) Declared() {
	s.mu.Lock()
	s.c.mu.Lock()
	s.c.mu.Unlock()
	s.mu.Unlock()
}

// Submit nests interprocedurally: the callee's acquisition is observed
// at the call site while Server.mu is held. Still the declared
// direction: clean.
func (s *Server) Submit() {
	s.mu.Lock()
	s.c.lockAndCount()
	s.mu.Unlock()
}

func (c *Cache) lockAndCount() {
	c.mu.Lock()
	c.mu.Unlock()
}

// evictLocked's contract seeds Server.mu as held at entry; acquiring
// Cache.mu under it matches the declaration: clean.
//
//hetpnoc:locked Server.mu
func (s *Server) evictLocked() {
	s.c.mu.Lock()
	s.c.mu.Unlock()
}

// Reverse acquires against the declared order, closing a cycle.
func (c *Cache) Reverse(s *Server) {
	c.mu.Lock()
	s.mu.Lock() // want `lock-order deadlock: Cache\.mu -> Server\.mu \(observed in serve\.Cache\.Reverse at serve\.go:\d+\); Server\.mu -> Cache\.mu \(declared at serve\.go:\d+\)`
	s.mu.Unlock()
	c.mu.Unlock()
}
