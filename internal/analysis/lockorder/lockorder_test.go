package lockorder_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), lockorder.Analyzer,
		"lo/serve", "lo/pair",
	)
}

// TestMalformedDeclaration covers the grammar errors, which report at
// the directive comment itself — a position want comments cannot
// annotate (the directive owns its whole line).
func TestMalformedDeclaration(t *testing.T) {
	src := `package p

import "sync"

//hetpnoc:lockorder OnlyOne.mu
//hetpnoc:lockorder A.mu A.mu same lock twice
//hetpnoc:lockorder bare alsobare some reason

type A struct{ mu sync.Mutex }

func Use(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: stubImporter{}}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	mp := &analysis.ModulePass{
		Analyzer: lockorder.Analyzer,
		Fset:     fset,
		Pkgs: []*analysis.PackageUnit{
			{Path: "p", Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info},
		},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := lockorder.Analyzer.RunModule(mp); err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"needs <outer> <inner> <why>",
		"two distinct qualified lock names",
		"two distinct qualified lock names",
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s: %s", fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("diagnostics = %d, want %d", len(diags), len(wants))
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

// stubImporter type-checks the one stdlib import the fixture needs by
// faking package sync: only the Mutex shape matters to the analyzer.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	if path != "sync" {
		return nil, nil
	}
	pkg := types.NewPackage("sync", "sync")
	mutex := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "Mutex", nil), types.NewStruct(nil, nil), nil)
	sig := types.NewSignatureType(types.NewVar(token.NoPos, pkg, "m", types.NewPointer(mutex)), nil, nil, nil, nil, false)
	for _, name := range []string{"Lock", "Unlock"} {
		mutex.AddMethod(types.NewFunc(token.NoPos, pkg, name, sig))
	}
	pkg.Scope().Insert(mutex.Obj())
	pkg.MarkComplete()
	return pkg, nil
}
