package gcobs

import (
	"reflect"
	"testing"
)

// TestParse covers the -m=2 stderr dialect: package headers and indented
// flow traces are skipped, escape trace headers (trailing ":") dedup
// against their bare note, moved-to-heap and BCE lines are classified,
// and relative paths are joined with the build directory.
func TestParse(t *testing.T) {
	stderr := "" +
		"# hetpnoc/internal/sim\n" +
		"internal/sim/bitset.go:10:6: can inline (*Bitset).Set\n" +
		"internal/fabric/fabric.go:42:9: &pending{...} escapes to heap:\n" +
		"  flow: ~r0 = &{storage for &pending{...}}:\n" +
		"    from &pending{...} (spill) at internal/fabric/fabric.go:42:9\n" +
		"internal/fabric/fabric.go:42:9: &pending{...} escapes to heap\n" +
		"internal/router/router.go:77:2: moved to heap: buf\n" +
		"internal/router/router.go:201:14: Found IsInBounds\n" +
		"internal/router/router.go:203:10: Found IsSliceInBounds\n" +
		"/abs/elsewhere/hot.go:5:3: x escapes to heap\n" +
		"internal/sim/rng.go:31:7: parameter r leaks to ~r0 with derefs=0:\n" +
		"\tindented continuation is skipped\n"

	got := Parse("/mod", []byte(stderr))
	want := []Fact{
		{File: "/mod/internal/fabric/fabric.go", Line: 42, Col: 9, Kind: KindEscape, KindName: "escape", Text: "&pending{...} escapes to heap"},
		{File: "/mod/internal/router/router.go", Line: 77, Col: 2, Kind: KindMoved, KindName: "moved", Text: "moved to heap: buf"},
		{File: "/mod/internal/router/router.go", Line: 201, Col: 14, Kind: KindBoundsCheck, KindName: "bounds-check", Text: "Found IsInBounds"},
		{File: "/mod/internal/router/router.go", Line: 203, Col: 10, Kind: KindBoundsCheck, KindName: "bounds-check", Text: "Found IsSliceInBounds"},
		{File: "/abs/elsewhere/hot.go", Line: 5, Col: 3, Kind: KindEscape, KindName: "escape", Text: "x escapes to heap"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Parse mismatch:\n got: %#v\nwant: %#v", got, want)
	}
}
