// Package gcobs collects ground-truth optimization evidence from the Go
// compiler itself: it builds the module with
//
//	go build -gcflags='-m=2 -d=ssa/check_bce' <patterns>
//
// and parses the resulting escape-analysis and bounds-check-elimination
// diagnostics into position-keyed facts. Where the hotpathalloc analyzer
// pattern-matches syntax that usually allocates, these facts are what the
// compiler actually decided: a value "escapes to heap" is a heap
// allocation at that site no matter how innocent the syntax looks, and a
// "Found IsInBounds" is a bounds check the BCE pass failed to eliminate.
//
// The go build cache stores and replays compiler diagnostics, so repeat
// collections after the first are cheap; the flag combination gets its
// own cache entries and never pollutes regular builds.
package gcobs

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Kind classifies one compiler fact.
type Kind uint8

const (
	// KindEscape is a value the escape analysis sent to the heap
	// ("escapes to heap"): a heap allocation at the site.
	KindEscape Kind = iota
	// KindMoved is a local variable moved to the heap ("moved to heap"):
	// the enclosing function allocates it on every call.
	KindMoved
	// KindBoundsCheck is a bounds check the BCE pass could not eliminate
	// ("Found IsInBounds" / "Found IsSliceInBounds").
	KindBoundsCheck
)

// String returns the kind name used in reports.
func (k Kind) String() string {
	switch k {
	case KindEscape:
		return "escape"
	case KindMoved:
		return "moved"
	case KindBoundsCheck:
		return "bounds-check"
	}
	return "?"
}

// Fact is one position-keyed compiler diagnostic.
type Fact struct {
	// File is the absolute path of the source file.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Kind Kind   `json:"kind"`
	// KindName is Kind rendered for the JSON artifact.
	KindName string `json:"kindName"`
	// Text is the compiler's message, e.g. "&path{...} escapes to heap".
	Text string `json:"text"`
}

// Report is one collection run: the facts plus enough provenance to
// reproduce it.
type Report struct {
	// Dir is the module directory the build ran in.
	Dir string `json:"dir"`
	// GcFlags are the -gcflags passed to the compiler.
	GcFlags string `json:"gcflags"`
	Facts   []Fact `json:"facts"`
}

// gcflags is the flag set handed to the compiler: full escape-analysis
// traces plus BCE debugging output.
const gcflags = "-m=2 -d=ssa/check_bce"

// Collect builds patterns (default ./...) in the module containing dir
// (resolved via `go list -m`, so tests running from a subdirectory still
// cover the whole module) and returns the parsed facts.
func Collect(dir string, patterns ...string) (*Report, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}

	args := append([]string{"build", "-gcflags=" + gcflags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("gcobs: go %s: %v\n%s", strings.Join(args, " "), err, tail(stderr.Bytes(), 2048))
	}
	return &Report{Dir: root, GcFlags: gcflags, Facts: Parse(root, stderr.Bytes())}, nil
}

// moduleRoot resolves the directory of the module containing dir.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("gcobs: resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return "", fmt.Errorf("gcobs: no module found in %q", dir)
	}
	return root, nil
}

// Parse extracts facts from compiler stderr output. File paths are
// reported relative to the build directory; dir makes them absolute.
// The -m=2 trace prints most escape notes twice (once as a bare note,
// once as a trace header ending in ":"), so facts are deduplicated by
// position and kind.
func Parse(dir string, stderr []byte) []Fact {
	var facts []Fact
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(stderr), "\n") {
		f, ok := parseLine(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(f.File) {
			f.File = filepath.Join(dir, f.File)
		}
		key := fmt.Sprintf("%s:%d:%d:%d", f.File, f.Line, f.Col, f.Kind)
		if seen[key] {
			continue
		}
		seen[key] = true
		f.KindName = f.Kind.String()
		facts = append(facts, f)
	}
	return facts
}

// parseLine parses one "file.go:line:col: message" diagnostic, returning
// false for package headers, indented trace detail and messages of kinds
// gcobs does not track (inlining decisions, parameter leaks).
func parseLine(line string) (Fact, bool) {
	if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
		return Fact{}, false
	}
	// file.go:line:col: message
	i := strings.Index(line, ".go:")
	if i < 0 {
		return Fact{}, false
	}
	file := line[:i+3]
	fields := strings.SplitN(line[i+4:], ":", 3)
	if len(fields) != 3 {
		return Fact{}, false
	}
	lineNo, err1 := strconv.Atoi(fields[0])
	col, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil {
		return Fact{}, false
	}
	msg := strings.TrimSpace(fields[2])

	var kind Kind
	switch {
	case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
		kind = KindEscape
	case strings.HasPrefix(msg, "moved to heap"):
		kind = KindMoved
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		kind = KindBoundsCheck
	default:
		return Fact{}, false
	}
	return Fact{File: file, Line: lineNo, Col: col, Kind: kind, Text: strings.TrimSuffix(msg, ":")}, true
}

// tail returns at most n trailing bytes of b, for error messages.
func tail(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}
