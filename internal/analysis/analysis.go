// Package analysis is a small, dependency-free analysis framework
// modelled on golang.org/x/tools/go/analysis. The container this repo is
// grown in cannot fetch external modules, so instead of depending on
// x/tools the repo carries this minimal mirror of its API: an Analyzer
// owns a Run function, a Pass hands it one type-checked package, and
// diagnostics flow back through Pass.Report.
//
// The surface is deliberately the subset the hetpnoclint suite needs —
// if the module ever gains network access, the analyzers port to the
// real go/analysis by swapping this import and deleting nothing else.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output. By
	// convention it is a single lowercase word.
	Name string

	// Doc is the analyzer's documentation: first line summary, then
	// detail.
	Doc string

	// Run applies the analyzer to one package. Exactly one of Run and
	// RunModule is set.
	Run func(*Pass) error

	// RunModule, when set, applies the analyzer once to the whole
	// module instead of package-by-package. The three whole-program
	// analyzers (hotpathreach, dettaint, lockorder) need every package
	// at once to build and traverse the call graph.
	RunModule func(*ModulePass) error
}

// Pass provides one analyzer run with the information about a single
// type-checked package and a sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files are the parsed source files of the package, including any
	// in-package _test.go files.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type information for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string

	// Suggestion, when non-empty, is a -fix-style hint: either the
	// directive that would silence the diagnostic (with its required
	// justification placeholder) or the mechanical rewrite that removes
	// the violation.
	Suggestion string

	// Fixes are machine-applicable rewrites that remove the violation.
	// cmd/hetpnoclint -fix applies them across the repo; a diagnostic
	// without fixes needs a human (restructure the code or add a
	// justified directive).
	Fixes []SuggestedFix
}

// SuggestedFix is one coherent mechanical rewrite: all of its edits are
// applied together or not at all (the fix engine drops the whole fix on
// a conflict with another fix's edits).
type SuggestedFix struct {
	// Message describes the rewrite, e.g. "thread ctx into RunContext".
	Message string

	// TextEdits are the byte-range replacements. Ranges within one fix
	// must not overlap.
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. Pos == End
// inserts before Pos.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// PackageUnit is one type-checked package as seen by a module-level
// analyzer: the same data a Pass carries, minus the per-analyzer
// plumbing. The loader produces one unit per package (plus one per
// external test package).
type PackageUnit struct {
	// Path is the import path; external test packages carry the
	// "_test" suffix.
	Path string

	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// ModulePass hands a whole-program analyzer every package of the module
// at once. Packages share one FileSet and one type-checker run, so a
// *types.Func object is identical whether reached from its defining
// package or through an importer — which is what makes a cross-package
// call graph possible.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*PackageUnit

	// Report delivers one diagnostic; positions may fall in any package.
	Report func(Diagnostic)

	// Cache, when non-nil, is shared by every module analyzer of one
	// lint invocation so expensive derived structures (the call graph)
	// are built once and reused. Keys are owned by the package that
	// computes the value (e.g. "callgraph").
	Cache map[string]any
}

// Reportf reports a formatted diagnostic at pos, mirroring
// Pass.Reportf for module-level analyzers.
func (mp *ModulePass) Reportf(pos token.Pos, msg, suggestion string) {
	mp.Report(Diagnostic{Pos: pos, Message: msg, Suggestion: suggestion})
}

// PassFor builds a per-package Pass over unit u that shares mp's
// reporter, so a module analyzer can reuse intraprocedural checkers
// (hotpathreach reuses hotpathalloc's body checks this way).
func (mp *ModulePass) PassFor(u *PackageUnit) *Pass {
	return &Pass{
		Analyzer:  mp.Analyzer,
		Fset:      mp.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.TypesInfo,
		Report:    mp.Report,
	}
}

// Reportf reports a formatted diagnostic at pos. It keeps analyzer
// bodies terse without pulling fmt into every call site.
func (p *Pass) Reportf(pos token.Pos, msg, suggestion string) {
	p.Report(Diagnostic{Pos: pos, Message: msg, Suggestion: suggestion})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// PkgNameOf resolves ident to the imported package it names, or nil when
// ident is not a package qualifier (or is shadowed by a local
// declaration). Analyzers use it to match qualified calls like time.Now
// without being fooled by a local variable named "time".
func (p *Pass) PkgNameOf(ident *ast.Ident) *types.PkgName {
	obj := p.TypesInfo.Uses[ident]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return nil
	}
	return pn
}
