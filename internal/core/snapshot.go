package core

import (
	"fmt"

	"hetpnoc/internal/photonic"
)

// AllocatorSnapshot is a checkpoint of the allocator's full mutable
// state: ownership, per-cluster tables and token circulation. The static
// configuration (reserved slots, token sizing, timeouts) is not saved —
// a snapshot only restores onto the allocator it was taken from.
type AllocatorSnapshot struct {
	owner    []int
	acquired [][]int
	// ids shares the inner slices with the live allocator: the ID cache
	// is replaced, never mutated in place (see process), so the slices
	// captured here stay valid however far the run advances.
	ids     [][]photonic.WavelengthID
	demand  [][][]int
	request [][]int
	current [][]int

	pos         int
	transitLeft int
	rotations   int64

	tokenDemand   []int
	tokenLost     bool
	lostForCycles int
	losses        int64
	regenerations int64
}

// Snapshot copies the allocator's mutable state.
func (a *Allocator) Snapshot() *AllocatorSnapshot {
	s := &AllocatorSnapshot{
		owner:         append([]int(nil), a.owner...),
		acquired:      copyRows(a.acquired),
		ids:           append([][]photonic.WavelengthID(nil), a.ids...),
		demand:        make([][][]int, len(a.demand)),
		request:       copyRows(a.request),
		current:       copyRows(a.current),
		pos:           a.pos,
		transitLeft:   a.transitLeft,
		rotations:     a.rotations,
		tokenDemand:   append([]int(nil), a.tokenDemand...),
		tokenLost:     a.tokenLost,
		lostForCycles: a.lostForCycles,
		losses:        a.losses,
		regenerations: a.regenerations,
	}
	for c := range a.demand {
		s.demand[c] = copyRows(a.demand[c])
	}
	return s
}

// Restore rewinds the allocator to a snapshot, leaving the snapshot
// intact for repeated restores.
func (a *Allocator) Restore(s *AllocatorSnapshot) error {
	if len(s.owner) != len(a.owner) || len(s.acquired) != len(a.acquired) {
		return fmt.Errorf("core: snapshot shape does not match allocator (%d/%d slots, %d/%d clusters)",
			len(s.owner), len(a.owner), len(s.acquired), len(a.acquired))
	}
	copy(a.owner, s.owner)
	for c := range a.acquired {
		a.acquired[c] = append(a.acquired[c][:0], s.acquired[c]...)
		a.ids[c] = s.ids[c]
		copy(a.request[c], s.request[c])
		copy(a.current[c], s.current[c])
		for i := range a.demand[c] {
			copy(a.demand[c][i], s.demand[c][i])
		}
	}
	a.pos = s.pos
	a.transitLeft = s.transitLeft
	a.rotations = s.rotations
	copy(a.tokenDemand, s.tokenDemand)
	a.tokenLost = s.tokenLost
	a.lostForCycles = s.lostForCycles
	a.losses = s.losses
	a.regenerations = s.regenerations
	return nil
}

// copyRows deep-copies a slice of int rows.
func copyRows(rows [][]int) [][]int {
	out := make([][]int, len(rows))
	for i, r := range rows {
		out[i] = append([]int(nil), r...)
	}
	return out
}
