package core

import (
	"testing"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func newAllocator(t *testing.T, total, reserved, maxChannel, perVisit int) *Allocator {
	t.Helper()
	bundle, err := photonic.NewBundle(total)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAllocator(Config{
		Topology:              topology.Default(),
		Bundle:                bundle,
		TotalWavelengths:      total,
		ReservedPerCluster:    reserved,
		MaxChannelWavelengths: maxChannel,
		MaxAcquirePerVisit:    perVisit,
		ClockHz:               2.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// demandAll sets every core of cluster cl to demand n wavelengths toward
// every foreign cluster.
func demandAll(a *Allocator, topo topology.Topology, cl topology.ClusterID, n int) {
	table := make([]int, topo.Clusters())
	for d := range table {
		if topology.ClusterID(d) != cl {
			table[d] = n
		}
	}
	for _, core := range topo.CoresOf(cl) {
		a.SetDemand(core, table)
	}
}

// rotate runs enough ticks for the token to visit every router k times.
func rotate(a *Allocator, k int) {
	cycles := a.TransitCycles() * 16 * k
	for i := 0; i < cycles; i++ {
		a.Tick(sim.Cycle(i))
	}
}

// TestTokenSizingEquations checks Eq. (1) and Eq. (2): N_TW = N_W*lambda_W
// - N_lambdaR bits, and the transit time on the 800 Gb/s control
// waveguide.
func TestTokenSizingEquations(t *testing.T) {
	// 64 wavelengths, 16 reserved: 1 waveguide x 64 - 16 = 48 bits ->
	// under one 320-bit cycle.
	a := newAllocator(t, 64, 1, 8, 0)
	if got := a.TokenBits(); got != 48 {
		t.Fatalf("token bits = %d, want 48 (Eq. 1)", got)
	}
	if got := a.TransitCycles(); got != 1 {
		t.Fatalf("transit = %d cycles, want 1 (Eq. 2)", got)
	}

	// 512 wavelengths: 8 waveguides x 64 - 16 = 496 bits -> 2 cycles.
	a = newAllocator(t, 512, 1, 64, 0)
	if got := a.TokenBits(); got != 496 {
		t.Fatalf("token bits = %d, want 496 (Eq. 1)", got)
	}
	if got := a.TransitCycles(); got != 2 {
		t.Fatalf("transit = %d cycles, want 2 (Eq. 2)", got)
	}
}

func TestInitialAllocationIsReservedMinimum(t *testing.T) {
	a := newAllocator(t, 64, 1, 8, 0)
	for cl := 0; cl < 16; cl++ {
		if got := a.AllocatedCount(topology.ClusterID(cl)); got != 1 {
			t.Fatalf("cluster %d starts with %d wavelengths, want the reserved 1", cl, got)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAcquisitionMatchesDemand: with demand below contention every cluster
// converges to exactly its requested wavelength count.
func TestAcquisitionMatchesDemand(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	// Every cluster demands 4 wavelengths: 16 x 4 = 64 = budget.
	for cl := 0; cl < 16; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 4)
	}
	rotate(a, 8)
	for cl := 0; cl < 16; cl++ {
		if got := a.AllocatedCount(topology.ClusterID(cl)); got != 4 {
			t.Fatalf("cluster %d holds %d wavelengths, want 4", cl, got)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRelinquishOnDemandDrop: when a task unmaps, its wavelengths return
// to the pool on the next token visit and another cluster can take them.
func TestRelinquishOnDemandDrop(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	demandAll(a, topo, 0, 8)
	rotate(a, 8)
	if got := a.AllocatedCount(0); got != 8 {
		t.Fatalf("cluster 0 holds %d, want 8", got)
	}

	// Task change: cluster 0 drops to 1, cluster 5 now wants 8.
	demandAll(a, topo, 0, 1)
	demandAll(a, topo, 5, 8)
	rotate(a, 8)
	if got := a.AllocatedCount(0); got != 1 {
		t.Fatalf("cluster 0 still holds %d after demand drop, want 1", got)
	}
	if got := a.AllocatedCount(5); got != 8 {
		t.Fatalf("cluster 5 holds %d, want 8", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChannelCap: Table 3-3 caps a channel at the top class's need (8
// wavelengths for bandwidth set 1) even under higher demand.
func TestChannelCap(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	demandAll(a, topo, 3, 40)
	rotate(a, 10)
	if got := a.AllocatedCount(3); got != 8 {
		t.Fatalf("cluster 3 holds %d wavelengths, cap is 8", got)
	}
}

// TestContentionFairness: eleven clusters demanding the maximum split the
// pool without starvation — the incremental per-visit acquisition
// converges to a balanced division.
func TestContentionFairness(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 1)
	for cl := 0; cl < 11; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 8)
	}
	rotate(a, 20)

	low, high := 64, 0
	total := 0
	for cl := 0; cl < 11; cl++ {
		n := a.AllocatedCount(topology.ClusterID(cl))
		if n < low {
			low = n
		}
		if n > high {
			high = n
		}
		total += n
	}
	if high-low > 1 {
		t.Fatalf("unfair division under contention: min %d, max %d", low, high)
	}
	// 64 - 5 idle reserved (clusters 11-15) = 59 wavelengths in play.
	if total != 59 {
		t.Fatalf("contending clusters hold %d wavelengths, want 59", total)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRequestTableUsesMax verifies the §3.2.1 rule: the request entry is
// the maximum of the four cores' demands, not their sum.
func TestRequestTableUsesMax(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	table := make([]int, 16)
	table[9] = 3
	a.SetDemand(topo.CoreAt(0, 0), table)
	table2 := make([]int, 16)
	table2[9] = 5
	a.SetDemand(topo.CoreAt(0, 1), table2)

	req := a.RequestTable(0)
	if req[9] != 5 {
		t.Fatalf("request[9] = %d, want max(3,5) = 5", req[9])
	}

	// Lowering the highest core's demand lowers the max.
	table2[9] = 2
	a.SetDemand(topo.CoreAt(0, 1), table2)
	if req := a.RequestTable(0); req[9] != 3 {
		t.Fatalf("request[9] = %d after update, want 3", req[9])
	}
}

// TestSelectForPacketUsesDemand: the wavelengths used for a packet follow
// the current-table entry for its destination (§3.3.1), floored at the
// reserved minimum.
func TestSelectForPacketUsesDemand(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	// Cluster 0 demands 8 toward cluster 1 but only 2 toward cluster 2.
	table := make([]int, 16)
	table[1] = 8
	table[2] = 2
	for _, c := range topo.CoresOf(0) {
		a.SetDemand(c, table)
	}
	rotate(a, 8)

	if got := len(a.SelectForPacket(0, 1)); got != 8 {
		t.Fatalf("packet to cluster 1 uses %d wavelengths, want 8", got)
	}
	if got := len(a.SelectForPacket(0, 2)); got != 2 {
		t.Fatalf("packet to cluster 2 uses %d wavelengths, want 2", got)
	}
	// No recorded demand: still at least the reserved wavelength.
	if got := len(a.SelectForPacket(0, 9)); got != 1 {
		t.Fatalf("packet to undemanded cluster uses %d wavelengths, want 1", got)
	}
}

func TestSelectNeverEmpty(t *testing.T) {
	a := newAllocator(t, 64, 1, 8, 0)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			if len(a.SelectForPacket(topology.ClusterID(src), topology.ClusterID(dst))) == 0 {
				t.Fatalf("SelectForPacket(%d,%d) returned no wavelengths", src, dst)
			}
		}
	}
}

func TestTokenRotationCounter(t *testing.T) {
	a := newAllocator(t, 64, 1, 8, 0)
	rotate(a, 3)
	if got := a.Rotations(); got != 3 {
		t.Fatalf("rotations = %d, want 3", got)
	}
}

func TestTokenEnergyCharged(t *testing.T) {
	bundle, err := photonic.NewBundle(64)
	if err != nil {
		t.Fatal(err)
	}
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	ledger.StartMeasurement()
	a, err := NewAllocator(Config{
		Topology:           topology.Default(),
		Bundle:             bundle,
		TotalWavelengths:   64,
		ReservedPerCluster: 1,
		ClockHz:            2.5e9,
		Ledger:             ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(0) // one hop: 48 bits of control traffic
	wantLaunch := 48 * 0.15
	if got := float64(ledger.Total(photonic.EnergyLaunch)); got < wantLaunch-1e-9 || got > wantLaunch+1e-9 {
		t.Fatalf("token launch energy = %g, want %g", got, wantLaunch)
	}
	if got := ledger.Total(photonic.EnergyTuning); got != 0 {
		t.Fatalf("token charged tuning energy %g; control rings are statically tuned", got)
	}
}

func TestNewAllocatorValidation(t *testing.T) {
	bundle, err := photonic.NewBundle(64)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Default()
	base := Config{Topology: topo, Bundle: bundle, TotalWavelengths: 64, ReservedPerCluster: 1, ClockHz: 2.5e9}

	cfg := base
	cfg.ReservedPerCluster = 0
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("zero reserve accepted")
	}
	cfg = base
	cfg.TotalWavelengths = 8 // cannot reserve 16
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("budget below total reserve accepted")
	}
	cfg = base
	cfg.TotalWavelengths = 100 // beyond bundle capacity (64)
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("budget beyond bundle capacity accepted")
	}
	cfg = base
	cfg.ClockHz = 0
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("zero clock accepted")
	}
	cfg = base
	cfg.MaxAcquirePerVisit = -1
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("negative per-visit bound accepted")
	}
}
