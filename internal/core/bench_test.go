package core

import (
	"testing"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// BenchmarkTokenTick measures one cycle of token circulation at the
// largest configuration (512 wavelengths), the allocator's hot path.
func BenchmarkTokenTick(b *testing.B) {
	bundle, err := photonic.NewBundle(512)
	if err != nil {
		b.Fatal(err)
	}
	topo := topology.Default()
	a, err := NewAllocator(Config{
		Topology:              topo,
		Bundle:                bundle,
		TotalWavelengths:      512,
		ReservedPerCluster:    1,
		MaxChannelWavelengths: 64,
		ClockHz:               2.5e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Heavy contention: every cluster wants the maximum.
	table := make([]int, topo.Clusters())
	for d := range table {
		table[d] = 64
	}
	for c := 0; c < topo.Cores(); c++ {
		a.SetDemand(topology.CoreID(c), table)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Tick(sim.Cycle(i))
	}
}

// BenchmarkSetDemand measures the demand-table update path (runs on every
// task remap for every core).
func BenchmarkSetDemand(b *testing.B) {
	bundle, err := photonic.NewBundle(64)
	if err != nil {
		b.Fatal(err)
	}
	topo := topology.Default()
	a, err := NewAllocator(Config{
		Topology:           topo,
		Bundle:             bundle,
		TotalWavelengths:   64,
		ReservedPerCluster: 1,
		ClockHz:            2.5e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	table := make([]int, topo.Clusters())
	for d := range table {
		table[d] = 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SetDemand(topology.CoreID(i%topo.Cores()), table)
	}
}
