// Package core implements the thesis's primary contribution: the
// token-passing dynamic bandwidth allocation (DBA) mechanism of d-HetPNoC
// (§3.2). A token circulates between the photonic routers on a dedicated
// control waveguide; each bit of the token records whether one dynamically
// allocatable wavelength is free. The router holding the token acquires or
// relinquishes wavelengths for its write channel according to its request
// table — the per-destination maximum of the demand tables its four cores
// report whenever their task mapping changes.
//
// The allocator guarantees a minimum reserved allocation per cluster (at
// least one wavelength, §3.2.1) so no cluster starves even when the rest
// of the budget is consumed.
package core

import (
	"fmt"

	"hetpnoc/internal/event"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/xbar"
)

// Policy selects how a token-holding router sizes its allocation target.
type Policy int

// Allocation policies.
const (
	// PolicyGreedy is the thesis's §3.2.1 rule: aim for the highest
	// request-table entry, bounded only by the reserve, the channel cap
	// and pool availability. Simple, but contended pools go to whoever
	// the token reaches first (mitigated by MaxAcquirePerVisit).
	PolicyGreedy Policy = iota + 1

	// PolicyProportional is this repository's take on the thesis's
	// stated future work ("find better ways to effectively manage
	// bandwidth allocation"): the token additionally carries each
	// router's latest demand, and every router targets its
	// demand-proportional share of the dynamic pool. Costs
	// clusters x 10 extra token bits; converges to a demand-weighted
	// fair division under contention.
	PolicyProportional
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyGreedy:
		return "greedy"
	case PolicyProportional:
		return "proportional"
	default:
		return "unknown"
	}
}

// demandFieldBits is the per-cluster width of the demand field the
// proportional policy piggybacks on the token.
const demandFieldBits = 10

// Config parameterizes the allocator.
type Config struct {
	Topology topology.Topology
	Bundle   photonic.WaveguideBundle

	// TotalWavelengths is the aggregate data-wavelength budget (N_W *
	// lambda_W slots exist physically; only this many are provisioned).
	TotalWavelengths int

	// ReservedPerCluster is the guaranteed minimum allocation (N_lambdaR
	// = clusters x this). At least 1 (§3.2.1).
	ReservedPerCluster int

	// MaxChannelWavelengths caps one write channel's allocation
	// (Table 3-3: 8, 32 and 64 for the three bandwidth sets). Zero means
	// "no cap beyond the budget".
	MaxChannelWavelengths int

	// ClockHz converts the token's serialized size into link cycles.
	ClockHz float64

	// MaxAcquirePerVisit bounds how many new wavelengths a router may
	// grab during one token visit. Incremental acquisition lets
	// contending clusters converge to a fair division of the pool over a
	// few token rotations instead of the first visitor draining it; the
	// thesis's request tables are deliberately left unmodified after
	// allocation so a router "can try to acquire additional wavelengths
	// ... the next time the token returns" (§3.2.1). Zero selects the
	// default of max(1, MaxChannelWavelengths/8).
	MaxAcquirePerVisit int

	// WaveguidesPerCluster, when positive, implements the thesis's
	// Chapter 4 area-mitigation proposal: "restrict a certain photonic
	// router PRx to wavelengths of Waveguide(x) and Waveguide(x+1)",
	// shrinking the modulator/detector count at the cost of allocation
	// flexibility. Cluster c may then only acquire wavelengths in the
	// WaveguidesPerCluster waveguides starting at its home waveguide
	// (c mod N_W). Zero means unrestricted (the baseline d-HetPNoC).
	// Requires the budget to fill whole waveguides.
	WaveguidesPerCluster int

	// Ledger, when non-nil, is charged for the token's optical traffic
	// on the control waveguide.
	Ledger *photonic.Ledger

	// Events, when non-nil, receives allocation-change events.
	Events *event.Log

	// Policy selects the allocation rule; zero means PolicyGreedy, the
	// thesis's behaviour.
	Policy Policy

	// RegenerationTimeoutCycles is how long the routers wait without
	// seeing the token before cluster 0 regenerates it (fault
	// tolerance: a transient control-waveguide fault must not freeze
	// bandwidth allocation forever). Zero selects the default of two
	// full rotation times. The wavelength-status bitmap is recovered
	// from the routers' current tables, which in this model is exactly
	// the owner state.
	RegenerationTimeoutCycles int
}

// Allocator is the token-passing DBA engine. It implements xbar.Allocator.
type Allocator struct {
	cfg      Config
	clusters int

	// owner[slot] is the cluster owning wavelength slot, or -1.
	owner []int
	// reservedOwner[slot] is the cluster the slot is permanently
	// reserved for, or -1 for dynamically allocatable slots.
	reservedOwner []int
	// acquired[c] lists the slots cluster c owns, reserved slots first,
	// then dynamic slots in acquisition order.
	acquired [][]int
	// ids[c] caches acquired[c] as WavelengthIDs.
	ids [][]photonic.WavelengthID

	// demand[c][i][d] is the wavelength demand core i of cluster c
	// reports toward destination cluster d.
	demand [][][]int
	// request[c][d] = max_i demand[c][i][d] (§3.2.1).
	request [][]int
	// current[c][d] is the allocation the router recorded for
	// destination d after its last token visit.
	current [][]int

	// Token circulation state.
	pos           int
	transitLeft   int
	transitCycles int
	tokenBits     int
	rotations     int64

	// tokenDemand[c] is the demand value cluster c last wrote into the
	// token's demand field (proportional policy only).
	tokenDemand []int

	// Fault-injection and recovery state.
	tokenLost     bool
	lostForCycles int
	regenTimeout  int
	losses        int64
	regenerations int64
}

var _ xbar.Allocator = (*Allocator)(nil)

// NewAllocator validates cfg and builds the allocator with every cluster
// holding exactly its reserved wavelengths and the token at cluster 0.
func NewAllocator(cfg Config) (*Allocator, error) {
	clusters := cfg.Topology.Clusters()
	if clusters == 0 {
		return nil, fmt.Errorf("core: topology has no clusters")
	}
	if cfg.ReservedPerCluster < 1 {
		return nil, fmt.Errorf("core: reserved wavelengths per cluster must be >= 1, got %d", cfg.ReservedPerCluster)
	}
	if cfg.TotalWavelengths < clusters*cfg.ReservedPerCluster {
		return nil, fmt.Errorf("core: %d wavelengths cannot reserve %d for each of %d clusters",
			cfg.TotalWavelengths, cfg.ReservedPerCluster, clusters)
	}
	if cfg.TotalWavelengths > cfg.Bundle.Capacity() {
		return nil, fmt.Errorf("core: budget %d exceeds bundle capacity %d", cfg.TotalWavelengths, cfg.Bundle.Capacity())
	}
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("core: clock frequency must be positive")
	}
	if cfg.MaxChannelWavelengths < 0 {
		return nil, fmt.Errorf("core: negative channel cap")
	}
	if cfg.MaxAcquirePerVisit < 0 {
		return nil, fmt.Errorf("core: negative per-visit acquisition bound")
	}
	if cfg.MaxAcquirePerVisit == 0 {
		cfg.MaxAcquirePerVisit = cfg.MaxChannelWavelengths / 8
		if cfg.MaxAcquirePerVisit < 1 {
			cfg.MaxAcquirePerVisit = 1
		}
	}

	if cfg.WaveguidesPerCluster < 0 {
		return nil, fmt.Errorf("core: negative waveguide restriction")
	}
	if cfg.WaveguidesPerCluster > 0 {
		if cfg.TotalWavelengths%cfg.Bundle.WavelengthsPerWaveguide != 0 {
			return nil, fmt.Errorf("core: waveguide restriction needs a whole-waveguide budget, got %d wavelengths",
				cfg.TotalWavelengths)
		}
		if cfg.WaveguidesPerCluster > cfg.Bundle.Waveguides {
			return nil, fmt.Errorf("core: restriction to %d waveguides exceeds the %d available",
				cfg.WaveguidesPerCluster, cfg.Bundle.Waveguides)
		}
		perWaveguideReserve := (clusters + cfg.Bundle.Waveguides - 1) / cfg.Bundle.Waveguides * cfg.ReservedPerCluster
		if perWaveguideReserve > cfg.Bundle.WavelengthsPerWaveguide {
			return nil, fmt.Errorf("core: reserved wavelengths do not fit the home waveguides")
		}
	}

	a := &Allocator{
		cfg:           cfg,
		clusters:      clusters,
		owner:         make([]int, cfg.Bundle.Capacity()),
		reservedOwner: make([]int, cfg.Bundle.Capacity()),
		acquired:      make([][]int, clusters),
		ids:           make([][]photonic.WavelengthID, clusters),
		demand:        make([][][]int, clusters),
		request:       make([][]int, clusters),
		current:       make([][]int, clusters),
	}
	for s := range a.owner {
		a.owner[s] = -1
		a.reservedOwner[s] = -1
	}
	for c := 0; c < clusters; c++ {
		a.demand[c] = make([][]int, cfg.Topology.ClusterSize())
		for i := range a.demand[c] {
			a.demand[c][i] = make([]int, clusters)
		}
		a.request[c] = make([]int, clusters)
		a.current[c] = make([]int, clusters)
		for k := 0; k < cfg.ReservedPerCluster; k++ {
			slot := a.reservedSlot(c, k)
			if a.reservedOwner[slot] != -1 {
				return nil, fmt.Errorf("core: reserved slot %d assigned twice", slot)
			}
			a.reservedOwner[slot] = c
			a.owner[slot] = c
			a.acquired[c] = append(a.acquired[c], slot)
		}
		a.rebuildIDs(c)
	}

	if cfg.Policy == 0 {
		a.cfg.Policy = PolicyGreedy
	}
	if a.cfg.Policy != PolicyGreedy && a.cfg.Policy != PolicyProportional {
		return nil, fmt.Errorf("core: unknown allocation policy %d", cfg.Policy)
	}
	a.tokenDemand = make([]int, clusters)

	// Token sizing, Eq. (1): N_TW = N_W * lambda_W - N_lambdaR bits, one
	// bit per dynamically allocatable wavelength. Transit time, Eq. (2):
	// T_L = N_TW / (lambda_W * B) on the full-DWDM control waveguide.
	// The proportional policy piggybacks a per-cluster demand field.
	a.tokenBits = cfg.Bundle.Capacity() - clusters*cfg.ReservedPerCluster
	if a.cfg.Policy == PolicyProportional {
		a.tokenBits += clusters * demandFieldBits
	}
	perCycle := photonic.BitsPerCycle(cfg.ClockHz) * float64(cfg.Bundle.WavelengthsPerWaveguide)
	a.transitCycles = int(float64(a.tokenBits)/perCycle) + 1
	if float64(a.tokenBits) <= perCycle*float64(a.transitCycles-1) {
		a.transitCycles--
	}
	if a.transitCycles < 1 {
		a.transitCycles = 1
	}
	a.transitLeft = a.transitCycles
	a.regenTimeout = cfg.RegenerationTimeoutCycles
	if a.regenTimeout == 0 {
		a.regenTimeout = 2 * clusters * a.transitCycles
	}
	if a.regenTimeout < 1 {
		return nil, fmt.Errorf("core: regeneration timeout must be positive, got %d", a.regenTimeout)
	}
	return a, nil
}

// Name implements xbar.Allocator.
func (a *Allocator) Name() string { return "token-dba" }

// TokenBits returns N_TW, the token size in bits (Eq. 1).
func (a *Allocator) TokenBits() int { return a.tokenBits }

// TransitCycles returns T_L in cycles (Eq. 2).
func (a *Allocator) TransitCycles() int { return a.transitCycles }

// Rotations returns how many full token rotations have completed.
func (a *Allocator) Rotations() int64 { return a.rotations }

// TokenHolder returns the cluster the token is at or travelling toward.
func (a *Allocator) TokenHolder() topology.ClusterID { return topology.ClusterID(a.pos) }

// DropToken injects a control-waveguide fault: the circulating token is
// lost. Allocation freezes (every cluster keeps what it holds, including
// its reserved minimum) until the regeneration timeout elapses and
// cluster 0 rebuilds the token. For fault-tolerance testing.
func (a *Allocator) DropToken() {
	if a.tokenLost {
		return
	}
	a.tokenLost = true
	a.lostForCycles = 0
	a.losses++
}

// TokenLost reports whether the token is currently missing.
func (a *Allocator) TokenLost() bool { return a.tokenLost }

// TokenLosses and TokenRegenerations count injected faults and recoveries.
func (a *Allocator) TokenLosses() int64 { return a.losses }

// TokenRegenerations counts completed token recoveries.
func (a *Allocator) TokenRegenerations() int64 { return a.regenerations }

// SetDemand implements xbar.Allocator: core reports its per-destination
// wavelength demand. The request table updates immediately — the thesis
// notes this works even when the token is elsewhere — and takes effect on
// the cluster's next token visit.
func (a *Allocator) SetDemand(core topology.CoreID, demand []int) {
	c := int(a.cfg.Topology.ClusterOf(core))
	i := a.cfg.Topology.LocalIndex(core)
	if len(demand) != a.clusters {
		panic(fmt.Sprintf("core: demand table has %d entries for %d clusters", len(demand), a.clusters))
	}
	copy(a.demand[c][i], demand)
	for d := 0; d < a.clusters; d++ {
		maxDemand := 0
		for _, row := range a.demand[c] {
			if row[d] > maxDemand {
				maxDemand = row[d]
			}
		}
		a.request[c][d] = maxDemand
	}
}

// Tick implements xbar.Allocator: one cycle of token circulation. When the
// token arrives at a router, the router reconciles its allocation with its
// request table, stamps its current table, and releases the token to the
// next cluster.
func (a *Allocator) Tick(now sim.Cycle) {
	if a.tokenLost {
		a.lostForCycles++
		if a.lostForCycles < a.regenTimeout {
			return
		}
		// Cluster 0 regenerates the token from the routers' recorded
		// allocations and circulation resumes.
		a.tokenLost = false
		a.lostForCycles = 0
		a.pos = 0
		a.transitLeft = a.transitCycles
		a.regenerations++
		a.cfg.Events.AppendInts(now, event.AllocationChanged, 0, 0, "token regenerated")
		return
	}
	a.transitLeft--
	if a.transitLeft > 0 {
		return
	}
	a.process(a.pos, now)
	a.pos = (a.pos + 1) % a.clusters
	if a.pos == 0 {
		a.rotations++
	}
	a.transitLeft = a.transitCycles
	if a.cfg.Ledger != nil {
		// The token's bits are modulated onto the control waveguide,
		// propagate, and are detected by the next router.
		bits := float64(a.tokenBits)
		a.cfg.Ledger.AddControlTransmit(bits)
		a.cfg.Ledger.AddDemodulation(bits)
	}
}

// want returns the §3.2.1 greedy aim of cluster c: the highest request
// toward any destination, floored at the reserved minimum and capped at
// the per-channel ceiling and the total budget.
func (a *Allocator) want(c int) int {
	t := 0
	for _, w := range a.request[c] {
		if w > t {
			t = w
		}
	}
	if t < a.cfg.ReservedPerCluster {
		t = a.cfg.ReservedPerCluster
	}
	if a.cfg.MaxChannelWavelengths > 0 && t > a.cfg.MaxChannelWavelengths {
		t = a.cfg.MaxChannelWavelengths
	}
	if t > a.cfg.TotalWavelengths {
		t = a.cfg.TotalWavelengths
	}
	return t
}

// target returns the allocation cluster c aims for under the configured
// policy. Under PolicyProportional the router first records its own
// demand in the token's demand field, then caps its aim at its
// demand-proportional share of the dynamic pool (based on every router's
// last-written demand).
func (a *Allocator) target(c int) int {
	want := a.want(c)
	if a.cfg.Policy != PolicyProportional {
		return want
	}

	reserved := a.cfg.ReservedPerCluster
	maxField := 1<<demandFieldBits - 1
	dyn := want - reserved
	if dyn > maxField {
		dyn = maxField
	}
	a.tokenDemand[c] = dyn

	totalDyn := 0
	for _, d := range a.tokenDemand {
		totalDyn += d
	}
	dynamicPool := a.cfg.TotalWavelengths - a.clusters*reserved
	if totalDyn <= dynamicPool {
		return want // everyone is satisfiable; no need to scale back
	}
	share := reserved + dyn*dynamicPool/totalDyn
	if share < reserved {
		share = reserved
	}
	if share < want {
		return share
	}
	return want
}

// process reconciles cluster c's allocation against its request table
// while it holds the token.
func (a *Allocator) process(c int, now sim.Cycle) {
	target := a.target(c)
	have := len(a.acquired[c])
	before := have

	switch {
	case have < target:
		// Acquire free dynamic wavelengths in ascending slot order, at
		// most MaxAcquirePerVisit per visit. Only slots within the
		// provisioned budget (and, under waveguide restriction, this
		// cluster's allowed waveguides) are allocatable.
		if limit := have + a.cfg.MaxAcquirePerVisit; target > limit {
			target = limit
		}
		for slot := 0; slot < a.cfg.TotalWavelengths && have < target; slot++ {
			if a.owner[slot] != -1 || a.reservedOwner[slot] != -1 || !a.slotAllowed(slot, c) {
				continue
			}
			a.owner[slot] = c
			a.acquired[c] = append(a.acquired[c], slot)
			have++
		}
	case have > target:
		// Relinquish surplus dynamic wavelengths, most recently acquired
		// first; reserved slots are never released.
		for have > target {
			last := a.acquired[c][have-1]
			if a.reservedOwner[last] == c {
				break
			}
			a.owner[last] = -1
			a.acquired[c] = a.acquired[c][:have-1]
			have--
		}
	}

	for d := 0; d < a.clusters; d++ {
		cur := a.request[c][d]
		if cur > have {
			cur = have
		}
		a.current[c][d] = cur
	}
	// The acquired list only changed if the count moved (a visit either
	// appends or trims, never both), so an unchanged allocation keeps its
	// cached IDs — rebuilding would allocate a fresh slice per token
	// visit. The cache must never be mutated in place: transmit engines
	// and open receive windows hold views of it across cycles.
	if have != before {
		//hetpnoc:coldcall allocation-epoch copy-on-write: runs only when a token visit moves the count; engines hold views of the old slice
		a.rebuildIDs(c)
		a.cfg.Events.AppendInts(now, event.AllocationChanged, c, 0,
			"%d -> %d wavelengths (target %d)", int64(before), int64(have), int64(target))
	}
}

// reservedSlot returns the k-th permanently reserved slot of cluster c.
// Unrestricted allocators pack the reserves at the start of the bundle;
// waveguide-restricted ones place each cluster's reserves inside its home
// waveguide (c mod N_W), where it is guaranteed modulators exist.
func (a *Allocator) reservedSlot(c, k int) int {
	if a.cfg.WaveguidesPerCluster == 0 {
		return c*a.cfg.ReservedPerCluster + k
	}
	nw := a.cfg.Bundle.Waveguides
	home := c % nw
	offset := (c/nw)*a.cfg.ReservedPerCluster + k
	return home*a.cfg.Bundle.WavelengthsPerWaveguide + offset
}

// slotAllowed reports whether cluster c's modulators can drive slot. With
// no restriction every cluster reaches every waveguide; restricted
// clusters reach WaveguidesPerCluster waveguides starting at their home.
func (a *Allocator) slotAllowed(slot, c int) bool {
	w := a.cfg.WaveguidesPerCluster
	if w == 0 {
		return true
	}
	nw := a.cfg.Bundle.Waveguides
	wg := slot / a.cfg.Bundle.WavelengthsPerWaveguide
	home := c % nw
	for i := 0; i < w; i++ {
		if wg == (home+i)%nw {
			return true
		}
	}
	return false
}

func (a *Allocator) rebuildIDs(c int) {
	ids := make([]photonic.WavelengthID, len(a.acquired[c]))
	for i, slot := range a.acquired[c] {
		ids[i] = a.cfg.Bundle.IDForSlot(slot)
	}
	a.ids[c] = ids
}

// Allocated implements xbar.Allocator.
func (a *Allocator) Allocated(c topology.ClusterID) []photonic.WavelengthID {
	return a.ids[c]
}

// AllocatedCount returns the size of cluster c's current allocation.
func (a *Allocator) AllocatedCount(c topology.ClusterID) int {
	return len(a.acquired[c])
}

// SelectForPacket implements xbar.Allocator: the wavelengths for a packet
// are chosen among the allocated ones according to the current table entry
// for the destination (§3.3.1). A packet toward a destination with no
// recorded demand still gets the reserved minimum.
func (a *Allocator) SelectForPacket(src, dst topology.ClusterID) []photonic.WavelengthID {
	want := a.current[src][dst]
	if want < a.cfg.ReservedPerCluster {
		want = a.cfg.ReservedPerCluster
	}
	if have := len(a.ids[src]); want > have {
		want = have
	}
	return a.ids[src][:want]
}

// CurrentTable returns a copy of cluster c's current table, for
// diagnostics and the dbatrace example.
func (a *Allocator) CurrentTable(c topology.ClusterID) []int {
	out := make([]int, a.clusters)
	copy(out, a.current[c])
	return out
}

// RequestTable returns a copy of cluster c's request table.
func (a *Allocator) RequestTable(c topology.ClusterID) []int {
	out := make([]int, a.clusters)
	copy(out, a.request[c])
	return out
}

// CheckInvariants verifies the allocation's structural invariants; tests
// call it after arbitrary protocol activity. It returns a descriptive
// error on the first violation.
func (a *Allocator) CheckInvariants() error {
	seen := make(map[int]int)
	total := 0
	for c := 0; c < a.clusters; c++ {
		if len(a.acquired[c]) < a.cfg.ReservedPerCluster {
			return fmt.Errorf("core: cluster %d holds %d < reserved %d wavelengths",
				c, len(a.acquired[c]), a.cfg.ReservedPerCluster)
		}
		if limit := a.cfg.MaxChannelWavelengths; limit > 0 && len(a.acquired[c]) > limit {
			return fmt.Errorf("core: cluster %d holds %d > cap %d wavelengths", c, len(a.acquired[c]), limit)
		}
		for _, slot := range a.acquired[c] {
			if prev, dup := seen[slot]; dup {
				return fmt.Errorf("core: slot %d owned by both cluster %d and %d", slot, prev, c)
			}
			seen[slot] = c
			if a.owner[slot] != c {
				return fmt.Errorf("core: slot %d in cluster %d's list but owned by %d", slot, c, a.owner[slot])
			}
			if slot >= a.cfg.TotalWavelengths {
				return fmt.Errorf("core: slot %d outside provisioned budget %d", slot, a.cfg.TotalWavelengths)
			}
			if ro := a.reservedOwner[slot]; ro != -1 && ro != c {
				return fmt.Errorf("core: cluster %d holds slot %d reserved for %d", c, slot, ro)
			}
			if !a.slotAllowed(slot, c) {
				return fmt.Errorf("core: cluster %d holds slot %d outside its allowed waveguides", c, slot)
			}
		}
		if len(a.ids[c]) != len(a.acquired[c]) {
			return fmt.Errorf("core: cluster %d ID cache out of sync", c)
		}
		total += len(a.acquired[c])
	}
	if total > a.cfg.TotalWavelengths {
		return fmt.Errorf("core: %d wavelengths allocated, budget is %d", total, a.cfg.TotalWavelengths)
	}
	for slot, owner := range a.owner {
		if owner == -1 {
			continue
		}
		if c, ok := seen[slot]; !ok || c != owner {
			return fmt.Errorf("core: owner map says slot %d belongs to %d, lists disagree", slot, owner)
		}
	}
	for slot, ro := range a.reservedOwner {
		if ro == -1 {
			continue
		}
		if a.owner[slot] != ro {
			return fmt.Errorf("core: reserved slot %d of cluster %d owned by %d", slot, ro, a.owner[slot])
		}
	}
	return nil
}
