package core

import (
	"testing"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// TestTokenLossFreezesAllocation: while the token is missing, demand
// changes do not propagate and every cluster keeps what it holds.
func TestTokenLossFreezesAllocation(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	demandAll(a, topo, 0, 8)
	rotate(a, 8)
	if got := a.AllocatedCount(0); got != 8 {
		t.Fatalf("cluster 0 holds %d, want 8", got)
	}

	a.DropToken()
	if !a.TokenLost() {
		t.Fatal("token not marked lost")
	}
	// New demand appears while the token is gone.
	demandAll(a, topo, 5, 8)
	before := a.AllocatedCount(5)
	for i := 0; i < a.regenTimeout-1; i++ {
		a.Tick(sim.Cycle(i))
	}
	if got := a.AllocatedCount(5); got != before {
		t.Fatalf("allocation moved (%d -> %d) while the token was lost", before, got)
	}
	if got := a.AllocatedCount(0); got != 8 {
		t.Fatal("holdings changed while the token was lost")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTokenRegenerationRestoresProtocol: after the timeout the token is
// rebuilt and the frozen demand converges normally.
func TestTokenRegenerationRestoresProtocol(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	a.DropToken()
	demandAll(a, topo, 5, 8)

	// Tick through the outage, the regeneration and several rotations.
	cycles := a.regenTimeout + a.TransitCycles()*16*8 + 1
	for i := 0; i < cycles; i++ {
		a.Tick(sim.Cycle(i))
	}
	if a.TokenLost() {
		t.Fatal("token still lost after the regeneration timeout")
	}
	if a.TokenRegenerations() != 1 || a.TokenLosses() != 1 {
		t.Fatalf("losses=%d regenerations=%d, want 1/1", a.TokenLosses(), a.TokenRegenerations())
	}
	if got := a.AllocatedCount(5); got != 8 {
		t.Fatalf("cluster 5 holds %d after recovery, want 8", got)
	}
	if a.Rotations() == 0 {
		t.Fatal("no rotations after recovery")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleDropIsIdempotent: dropping an already-lost token is one fault.
func TestDoubleDropIsIdempotent(t *testing.T) {
	a := newAllocator(t, 64, 1, 8, 0)
	a.DropToken()
	a.DropToken()
	if a.TokenLosses() != 1 {
		t.Fatalf("losses = %d, want 1", a.TokenLosses())
	}
}

// TestRepeatedOutages: the protocol survives a storm of token losses.
func TestRepeatedOutages(t *testing.T) {
	topo := topology.Default()
	a := newAllocator(t, 64, 1, 8, 0)
	for cl := 0; cl < 16; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 4)
	}
	now := sim.Cycle(0)
	for outage := 0; outage < 5; outage++ {
		for i := 0; i < 100; i++ {
			a.Tick(now)
			now++
		}
		a.DropToken()
		for i := 0; i < a.regenTimeout+50; i++ {
			a.Tick(now)
			now++
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("outage %d: %v", outage, err)
		}
	}
	if a.TokenRegenerations() != 5 {
		t.Fatalf("regenerations = %d, want 5", a.TokenRegenerations())
	}
	// Steady state still converges to the uniform 4-per-cluster split.
	for i := 0; i < 16*8*a.TransitCycles(); i++ {
		a.Tick(now)
		now++
	}
	for cl := 0; cl < 16; cl++ {
		if got := a.AllocatedCount(topology.ClusterID(cl)); got != 4 {
			t.Fatalf("cluster %d holds %d after outages, want 4", cl, got)
		}
	}
}
