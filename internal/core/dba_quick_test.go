package core

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// TestInvariantsUnderRandomProtocolActivity is the allocator's main
// property test: any sequence of demand updates interleaved with token
// circulation preserves the structural invariants — no wavelength is
// double-owned, every cluster keeps its reserved minimum, caps and budget
// hold, and the ID caches stay consistent.
//
//hetpnoc:detsafe property test samples random activity on purpose; quick prints the counterexample and no entropy reaches simulator state
func TestInvariantsUnderRandomProtocolActivity(t *testing.T) {
	topo := topology.Default()

	run := func(seed uint64, totalSel uint8, steps uint8) bool {
		totals := []int{64, 256, 512}
		total := totals[int(totalSel)%len(totals)]
		bundle, err := photonic.NewBundle(total)
		if err != nil {
			return false
		}
		a, err := NewAllocator(Config{
			Topology:              topo,
			Bundle:                bundle,
			TotalWavelengths:      total,
			ReservedPerCluster:    1,
			MaxChannelWavelengths: total / 8,
			ClockHz:               2.5e9,
		})
		if err != nil {
			return false
		}

		rng := sim.NewRNG(seed)
		now := sim.Cycle(0)
		for step := 0; step < int(steps)+50; step++ {
			switch rng.Intn(3) {
			case 0:
				// Random demand update from a random core.
				core := topology.CoreID(rng.Intn(topo.Cores()))
				table := make([]int, topo.Clusters())
				self := topo.ClusterOf(core)
				for d := range table {
					if topology.ClusterID(d) != self {
						table[d] = rng.Intn(total/4 + 1)
					}
				}
				a.SetDemand(core, table)
			case 1:
				// A burst of token circulation.
				for i := 0; i < rng.Intn(40)+1; i++ {
					a.Tick(now)
					now++
				}
			case 2:
				// Packet selections must always be non-empty and within
				// the source's allocation.
				src := topology.ClusterID(rng.Intn(topo.Clusters()))
				dst := topology.ClusterID(rng.Intn(topo.Clusters()))
				if src == dst {
					continue
				}
				use := a.SelectForPacket(src, dst)
				if len(use) == 0 || len(use) > a.AllocatedCount(src) {
					return false
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}

	if err := quick.Check(run, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocationConservesWavelengths: after any demand pattern and full
// convergence, the sum of allocations plus free wavelengths equals the
// budget.
//
//hetpnoc:detsafe property test samples random demand patterns on purpose; quick prints the counterexample and no entropy reaches simulator state
func TestAllocationConservesWavelengths(t *testing.T) {
	topo := topology.Default()
	f := func(seed uint64) bool {
		bundle, err := photonic.NewBundle(64)
		if err != nil {
			return false
		}
		a, err := NewAllocator(Config{
			Topology:              topo,
			Bundle:                bundle,
			TotalWavelengths:      64,
			ReservedPerCluster:    1,
			MaxChannelWavelengths: 8,
			ClockHz:               2.5e9,
		})
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		for cl := 0; cl < topo.Clusters(); cl++ {
			table := make([]int, topo.Clusters())
			for d := range table {
				if d != cl {
					table[d] = rng.Intn(9)
				}
			}
			for _, core := range topo.CoresOf(topology.ClusterID(cl)) {
				a.SetDemand(core, table)
			}
		}
		for i := 0; i < 16*8*a.TransitCycles(); i++ {
			a.Tick(sim.Cycle(i))
		}
		total := 0
		for cl := 0; cl < topo.Clusters(); cl++ {
			n := a.AllocatedCount(topology.ClusterID(cl))
			if n < 1 || n > 8 {
				return false
			}
			total += n
		}
		return total <= 64 && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
