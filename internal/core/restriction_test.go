package core

import (
	"testing"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func newRestrictedAllocator(t *testing.T, total, waveguides int) *Allocator {
	t.Helper()
	bundle, err := photonic.NewBundle(total)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAllocator(Config{
		Topology:              topology.Default(),
		Bundle:                bundle,
		TotalWavelengths:      total,
		ReservedPerCluster:    1,
		MaxChannelWavelengths: 64,
		WaveguidesPerCluster:  waveguides,
		ClockHz:               2.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestRestrictedReservedSlotsInHomeWaveguide: under the Chapter 4
// restriction, each cluster's reserved wavelength must live in a
// waveguide its modulators can actually drive.
func TestRestrictedReservedSlotsInHomeWaveguide(t *testing.T) {
	a := newRestrictedAllocator(t, 512, 2)
	for cl := 0; cl < 16; cl++ {
		ids := a.Allocated(topology.ClusterID(cl))
		if len(ids) != 1 {
			t.Fatalf("cluster %d starts with %d wavelengths", cl, len(ids))
		}
		home := cl % 8
		if ids[0].Waveguide != home {
			t.Fatalf("cluster %d reserved wavelength in waveguide %d, home is %d",
				cl, ids[0].Waveguide, home)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRestrictedAcquisitionStaysInAllowedWaveguides: demand-driven
// acquisition never crosses outside Waveguide(x)..Waveguide(x+W-1).
func TestRestrictedAcquisitionStaysInAllowedWaveguides(t *testing.T) {
	topo := topology.Default()
	a := newRestrictedAllocator(t, 512, 2)
	for cl := 0; cl < 16; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 40)
	}
	rotate(a, 20)

	for cl := 0; cl < 16; cl++ {
		home := cl % 8
		next := (cl + 1) % 8
		for _, id := range a.Allocated(topology.ClusterID(cl)) {
			if id.Waveguide != home && id.Waveguide != next {
				t.Fatalf("cluster %d acquired %v outside waveguides {%d,%d}", cl, id, home, next)
			}
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRestrictionCapsAllocation: a cluster restricted to 2 waveguides can
// never hold more than 2 x 64 wavelengths regardless of demand and cap.
func TestRestrictionCapsAllocation(t *testing.T) {
	topo := topology.Default()
	a := newRestrictedAllocator(t, 512, 1)
	// Only cluster 0 demands; it shares waveguide 0 with cluster 8's
	// home, but with no contention it can take the rest of the
	// waveguide.
	demandAll(a, topo, 0, 64)
	rotate(a, 30)

	got := a.AllocatedCount(0)
	// Waveguide 0 holds 64 slots; two reserved slots live there
	// (clusters 0 and 8), so cluster 0 can hold at most 63.
	if got > 63 {
		t.Fatalf("cluster 0 holds %d wavelengths from a single waveguide", got)
	}
	if got < 60 {
		t.Fatalf("cluster 0 only acquired %d of its waveguide", got)
	}
	for _, id := range a.Allocated(0) {
		if id.Waveguide != 0 {
			t.Fatalf("restricted-to-1 cluster acquired %v", id)
		}
	}
}

// TestRestrictionSharing: two clusters with the same home waveguide
// contend for it without violating ownership.
func TestRestrictionSharing(t *testing.T) {
	topo := topology.Default()
	a := newRestrictedAllocator(t, 512, 1)
	demandAll(a, topo, 0, 64) // home waveguide 0
	demandAll(a, topo, 8, 64) // also home waveguide 0
	rotate(a, 30)

	total := a.AllocatedCount(0) + a.AllocatedCount(8)
	if total > 64 {
		t.Fatalf("clusters 0 and 8 hold %d wavelengths from one 64-slot waveguide", total)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictionValidation(t *testing.T) {
	bundle, err := photonic.NewBundle(512)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Topology:           topology.Default(),
		Bundle:             bundle,
		TotalWavelengths:   512,
		ReservedPerCluster: 1,
		ClockHz:            2.5e9,
	}

	cfg := base
	cfg.WaveguidesPerCluster = -1
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("negative restriction accepted")
	}
	cfg = base
	cfg.WaveguidesPerCluster = 9 // only 8 waveguides exist
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("restriction beyond waveguide count accepted")
	}
	// A partial-waveguide budget cannot be restricted.
	smallBundle, err := photonic.NewBundle(100)
	if err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.Bundle = smallBundle
	cfg.TotalWavelengths = 100
	cfg.WaveguidesPerCluster = 1
	if _, err := NewAllocator(cfg); err == nil {
		t.Error("partial-waveguide restricted budget accepted")
	}
}

// TestRestrictedInvariantsUnderChurn: random demand churn with token
// circulation preserves all invariants under restriction.
func TestRestrictedInvariantsUnderChurn(t *testing.T) {
	topo := topology.Default()
	a := newRestrictedAllocator(t, 512, 2)
	rng := sim.NewRNG(31)
	now := sim.Cycle(0)
	for step := 0; step < 300; step++ {
		cl := topology.ClusterID(rng.Intn(16))
		demandAll(a, topo, cl, rng.Intn(65))
		for i := 0; i < rng.Intn(20)+1; i++ {
			a.Tick(now)
			now++
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
