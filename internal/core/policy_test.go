package core

import (
	"testing"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/topology"
)

func newProportionalAllocator(t *testing.T, total, maxChannel int) *Allocator {
	t.Helper()
	bundle, err := photonic.NewBundle(total)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAllocator(Config{
		Topology:              topology.Default(),
		Bundle:                bundle,
		TotalWavelengths:      total,
		ReservedPerCluster:    1,
		MaxChannelWavelengths: maxChannel,
		Policy:                PolicyProportional,
		ClockHz:               2.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestProportionalTokenCarriesDemandField: the proportional token is
// larger by clusters x 10 bits (Eq. 1 plus the demand field).
func TestProportionalTokenCarriesDemandField(t *testing.T) {
	greedy := newAllocator(t, 64, 1, 8, 0)
	prop := newProportionalAllocator(t, 64, 8)
	if got, want := prop.TokenBits(), greedy.TokenBits()+16*10; got != want {
		t.Fatalf("proportional token = %d bits, want %d", got, want)
	}
}

// TestProportionalUncontendedMatchesGreedy: when total demand fits the
// pool, the proportional policy allocates exactly what the greedy one
// would.
func TestProportionalUncontendedMatchesGreedy(t *testing.T) {
	topo := topology.Default()
	a := newProportionalAllocator(t, 64, 8)
	for cl := 0; cl < 16; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 4)
	}
	rotate(a, 8)
	for cl := 0; cl < 16; cl++ {
		if got := a.AllocatedCount(topology.ClusterID(cl)); got != 4 {
			t.Fatalf("cluster %d holds %d, want 4", cl, got)
		}
	}
}

// TestProportionalWeightsContendedPool: with clusters demanding 8 and 2
// wavelengths against an insufficient pool, the proportional division
// reflects the 4:1 demand ratio instead of first-come order.
func TestProportionalWeightsContendedPool(t *testing.T) {
	topo := topology.Default()
	a := newProportionalAllocator(t, 64, 64)
	// 8 clusters want 17 wavelengths, 8 want 3: dynamic demand
	// 8*16 + 8*2 = 144 >> 48 dynamic slots.
	for cl := 0; cl < 8; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 17)
	}
	for cl := 8; cl < 16; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 3)
	}
	rotate(a, 20)

	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Proportional floors: heavy clusters 1 + 16*48/144 = 6, light
	// clusters 1 + 2*48/144 = 1 (floor of 0.67 dynamic). Allow the
	// rounding remainder to land anywhere, but the shape must hold.
	for cl := 0; cl < 8; cl++ {
		got := a.AllocatedCount(topology.ClusterID(cl))
		if got < 5 || got > 7 {
			t.Fatalf("heavy cluster %d holds %d, want ~6 (proportional share)", cl, got)
		}
	}
	for cl := 8; cl < 16; cl++ {
		got := a.AllocatedCount(topology.ClusterID(cl))
		if got < 1 || got > 2 {
			t.Fatalf("light cluster %d holds %d, want ~1", cl, got)
		}
	}
}

// TestProportionalNoStarvationWithoutChunking: even with unbounded
// per-visit acquisition, the proportional policy cannot drain the pool
// into the first visitors — its target is bounded by the share.
func TestProportionalNoStarvationWithoutChunking(t *testing.T) {
	bundle, err := photonic.NewBundle(512)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Default()
	a, err := NewAllocator(Config{
		Topology:              topo,
		Bundle:                bundle,
		TotalWavelengths:      512,
		ReservedPerCluster:    1,
		MaxChannelWavelengths: 64,
		MaxAcquirePerVisit:    512, // effectively unbounded
		Policy:                PolicyProportional,
		ClockHz:               2.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for cl := 0; cl < 16; cl++ {
		demandAll(a, topo, topology.ClusterID(cl), 64)
	}
	rotate(a, 20)

	low, high := 512, 0
	for cl := 0; cl < 16; cl++ {
		n := a.AllocatedCount(topology.ClusterID(cl))
		if n < low {
			low = n
		}
		if n > high {
			high = n
		}
	}
	// 496 dynamic slots over 16 equal demands = 31 each; equal demand
	// must yield an equal division (32 with the reserve).
	if high-low > 1 {
		t.Fatalf("proportional division uneven under equal demand: min %d, max %d", low, high)
	}
	if low < 31 {
		t.Fatalf("clusters starved: min allocation %d", low)
	}
}

func TestPolicyValidationAndNames(t *testing.T) {
	bundle, err := photonic.NewBundle(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAllocator(Config{
		Topology:           topology.Default(),
		Bundle:             bundle,
		TotalWavelengths:   64,
		ReservedPerCluster: 1,
		Policy:             Policy(99),
		ClockHz:            2.5e9,
	}); err == nil {
		t.Error("unknown policy accepted")
	}
	if PolicyGreedy.String() != "greedy" || PolicyProportional.String() != "proportional" {
		t.Error("policy names wrong")
	}
	if Policy(0).String() != "unknown" {
		t.Error("zero policy should be unknown")
	}
}
