package hetpnoc

import (
	"bytes"
	"math"
	"testing"
)

// TestFireflyDHetPNoCUniformDelivery is the §3.4 differential oracle:
// under uniform traffic every cluster's demand is equal, so d-HetPNoC's
// token-passing DBA converges on the same uniform wavelength split
// Firefly is hard-wired to, and the two architectures should deliver
// the same packets. For bandwidth sets 1 and 2 the equivalence is
// exact. For set 3 the selected-gating reservation flit encodes the
// (larger) wavelength IDs, so the reservation phase is one serialization
// step longer and delivery timing shifts by a handful of packets; there
// the oracle allows a 0.1% relative difference (measured: 6 of ~11000).
func TestFireflyDHetPNoCUniformDelivery(t *testing.T) {
	for set := 1; set <= 3; set++ {
		run := func(arch Architecture) Result {
			t.Helper()
			res, err := Run(Config{
				Architecture: arch,
				BandwidthSet: set,
				Traffic:      Traffic{Kind: UniformRandom},
				Cycles:       10000,
				WarmupCycles: 1000,
				Seed:         7,
			})
			if err != nil {
				t.Fatalf("set %d: %v", set, err)
			}
			return res
		}
		ff := run(Firefly)
		dh := run(DHetPNoC)
		if ff.PacketsDelivered == 0 {
			t.Fatalf("set %d: Firefly delivered nothing", set)
		}
		diff := math.Abs(float64(ff.PacketsDelivered - dh.PacketsDelivered))
		switch set {
		case 1, 2:
			if diff != 0 {
				t.Errorf("set %d: Firefly delivered %d packets, d-HetPNoC %d; want exact equality",
					set, ff.PacketsDelivered, dh.PacketsDelivered)
			}
		case 3:
			if rel := diff / float64(ff.PacketsDelivered); rel > 0.001 {
				t.Errorf("set %d: Firefly delivered %d packets, d-HetPNoC %d; relative difference %.4f exceeds 0.1%%",
					set, ff.PacketsDelivered, dh.PacketsDelivered, rel)
			}
		}
		// Injection is driven purely by the traffic processes, which are
		// architecture-independent: it must match exactly on every set.
		if ff.PacketsInjected != dh.PacketsInjected {
			t.Errorf("set %d: Firefly injected %d packets, d-HetPNoC %d",
				set, ff.PacketsInjected, dh.PacketsInjected)
		}
	}
}

// TestRunDeterministicEncoding enforces the cache's core assumption:
// two runs of the same config+seed produce byte-identical canonical
// Result encodings. This is the end-to-end determinism guarantee — any
// map-iteration, wall-clock, or math/rand leak into the simulation
// breaks it.
func TestRunDeterministicEncoding(t *testing.T) {
	configs := []Config{
		{Cycles: 3000, WarmupCycles: 500, Seed: 42},
		{Architecture: Firefly, BandwidthSet: 2, Traffic: Traffic{Kind: SkewedKind, SkewLevel: 2}, Cycles: 3000, WarmupCycles: 500, Seed: 42},
		{Architecture: TorusPNoC, BandwidthSet: 3, Traffic: Traffic{Kind: UniformRandom, Burstiness: 3}, LoadScale: 2, Cycles: 3000, WarmupCycles: 500, Seed: 9},
	}
	for i, cfg := range configs {
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d run 1: %v", i, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d run 2: %v", i, err)
		}
		ea, err := a.CanonicalJSON()
		if err != nil {
			t.Fatalf("config %d encode 1: %v", i, err)
		}
		eb, err := b.CanonicalJSON()
		if err != nil {
			t.Fatalf("config %d encode 2: %v", i, err)
		}
		if !bytes.Equal(ea, eb) {
			t.Errorf("config %d: repeated runs encode differently:\n%s\n%s", i, ea, eb)
		}
	}
}

// TestNormalizedCanonicalJSONStable: a config spelled with explicit
// defaults and one relying on zero values must share canonical bytes —
// that is what lets the serving cache deduplicate them.
func TestNormalizedCanonicalJSONStable(t *testing.T) {
	implicit := Config{}
	explicit := Config{
		Architecture: DHetPNoC,
		BandwidthSet: 1,
		Traffic:      Traffic{Kind: UniformRandom},
		LoadScale:    1.0,
		Cycles:       10000,
		WarmupCycles: 1000,
		Seed:         1,
	}
	a, err := implicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("implicit and explicit default configs encode differently:\n%s\n%s", a, b)
	}
}
