package hetpnoc

import (
	"bytes"
	"testing"
)

// FuzzCheckpointRestore fuzzes checkpoint fidelity over the valid
// configuration space: for a random architecture, bandwidth set,
// workload, load, run length and checkpoint cycle, a run that takes a
// checkpoint must match the uncheckpointed reference byte-for-byte
// (taking a checkpoint never perturbs), and restoring the checkpoint and
// re-stepping the remainder must reproduce the same canonical result —
// Result.CanonicalJSON and the event log compared exactly. Hostile
// out-of-range inputs are FuzzConfigValidate's subject; here every
// fuzzed value is folded into the valid envelope so each iteration
// exercises the snapshot machinery, not Validate.
func FuzzCheckpointRestore(f *testing.F) {
	f.Add(0, 1, 2, 6, 500, 100, 200, uint64(7), true)
	f.Add(1, 2, 0, 4, 300, 80, 40, uint64(3), false)
	f.Add(2, 3, 1, 8, 400, 50, 350, uint64(11), true)
	f.Add(0, 1, 3, 12, 600, 550, 560, uint64(1), false)

	f.Fuzz(func(t *testing.T, arch, set, skew, loadQuarters, cycles, warmup, snapAt int, seed uint64, events bool) {
		mod := func(v, n int) int { return ((v % n) + n) % n }
		archs := []Architecture{DHetPNoC, Firefly, TorusPNoC}
		cfg := Config{
			Architecture: archs[mod(arch, len(archs))],
			BandwidthSet: 1 + mod(set, 3),
			LoadScale:    0.25 * float64(1+mod(loadQuarters, 16)),
			Cycles:       64 + mod(cycles, 512),
			Seed:         seed,
		}
		cfg.WarmupCycles = 1 + mod(warmup, cfg.Cycles-1)
		if lvl := mod(skew, 4); lvl > 0 {
			cfg.Traffic = SkewedTraffic(lvl)
		} else {
			cfg.Traffic = UniformTraffic()
		}
		if events {
			cfg.EventCapacity = 64
		}
		snap := 1 + mod(snapAt, cfg.Cycles-1)

		fc, err := cfg.toFabricConfig()
		if err != nil {
			t.Fatalf("clamped config rejected: %v\n%+v", err, cfg)
		}
		fc = fc.WithDefaults()

		// Reference: the uninterrupted run.
		ref := buildFabric(t, fc)
		stepN(t, ref, fc.Cycles)
		refJSON, refEvents := finishCanonical(t, ref)

		// Checkpointed run: taking the checkpoint must not perturb it.
		g := buildFabric(t, fc)
		stepN(t, g, snap)
		cp := g.Checkpoint()
		stepN(t, g, fc.Cycles-snap)
		gotJSON, gotEvents := finishCanonical(t, g)
		if !bytes.Equal(refJSON, gotJSON) {
			t.Fatalf("checkpoint at cycle %d perturbed the run:\nref: %s\ngot: %s", snap, refJSON, gotJSON)
		}
		if refEvents != gotEvents {
			t.Fatalf("checkpoint at cycle %d perturbed the event log", snap)
		}

		// Restore and re-step: byte-identical to the uncheckpointed run.
		if err := g.Restore(cp); err != nil {
			t.Fatal(err)
		}
		stepN(t, g, fc.Cycles-snap)
		redoJSON, redoEvents := finishCanonical(t, g)
		if !bytes.Equal(refJSON, redoJSON) {
			t.Fatalf("restored run diverged (checkpoint at %d):\nref: %s\ngot: %s", snap, refJSON, redoJSON)
		}
		if refEvents != redoEvents {
			t.Fatalf("restored run's event log diverged (checkpoint at %d)", snap)
		}
	})
}
