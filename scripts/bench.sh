#!/bin/sh
# bench.sh — capture a perf-regression snapshot, or compare against one.
#
# Runs the hot-path benchmark suite (3 repetitions, with allocation
# counters) and writes BENCH_<date>.json in the repo root via
# cmd/benchjson. Compare two snapshots to spot ns/op or allocs/op
# regressions; docs/PERFORMANCE.md explains how to read the report.
#
# Usage:
#	scripts/bench.sh                 # default fast selection
#	scripts/bench.sh -bench . -pkg . -benchtime 1x   # full figure suite
#	scripts/bench.sh compare         # fresh run vs newest committed BENCH_*.json
#	scripts/bench.sh compare -against report.json    # diff an existing report
#
# `compare` diffs against the newest committed BENCH_*.json and exits
# nonzero when any benchmark's throughput regressed by more than 20%.
# Extra arguments are passed through to cmd/benchjson.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
	shift
	baseline=$(git ls-files 'BENCH_*.json' | sort | tail -n 1)
	if [ -z "$baseline" ]; then
		echo "bench.sh: no committed BENCH_*.json baseline to compare against" >&2
		exit 1
	fi
	case "$*" in
	*-against*)
		# Diff an existing report; no benchmark run.
		exec go run ./cmd/benchjson -compare "$baseline" "$@"
		;;
	esac
	out=$(mktemp -t bench-compare-XXXXXX.json)
	trap 'rm -f "$out"' EXIT
	exec_status=0
	go run ./cmd/benchjson -count 3 -force -out "$out" -compare "$baseline" "$@" || exec_status=$?
	exit $exec_status
fi

exec go run ./cmd/benchjson -count 3 "$@"
