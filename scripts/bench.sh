#!/bin/sh
# bench.sh — capture a perf-regression snapshot.
#
# Runs the hot-path benchmark suite (3 repetitions, with allocation
# counters) and writes BENCH_<date>.json in the repo root via
# cmd/benchjson. Compare two snapshots to spot ns/op or allocs/op
# regressions; docs/PERFORMANCE.md explains how to read the report.
#
# Usage:
#	scripts/bench.sh                 # default fast selection
#	scripts/bench.sh -bench . -pkg . -benchtime 1x   # full figure suite
#
# Extra arguments are passed through to cmd/benchjson.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchjson -count 3 "$@"
